#include "allocators/ouroboros.h"

#include <atomic>
#include <bit>
#include <cstring>
#include <string>
#include <vector>

#include "alloc_core/sub_arena.h"

namespace gms::alloc {

// ---------------------------------------------------------------------------
// ChunkPool
// ---------------------------------------------------------------------------

void ChunkPool::init_host(std::byte* data, std::uint32_t num_chunks,
                          std::size_t chunk_bytes,
                          std::uint64_t* reuse_words) {
  data_ = data;
  num_chunks_ = num_chunks;
  chunk_bytes_ = chunk_bytes;
  bump_ = reinterpret_cast<std::uint32_t*>(reuse_words);
  *bump_ = 0;
  reuse_ = BoundedTicketQueue(reuse_words + 1, num_chunks);
  reuse_.init_host();
}

std::uint32_t ChunkPool::alloc(gpu::ThreadCtx& ctx) {
  std::uint64_t reused = 0;
  if (reuse_.try_dequeue(ctx, reused)) {
    return static_cast<std::uint32_t>(reused);
  }
  const std::uint32_t id = ctx.atomic_add(bump_, 1u);
  if (id < num_chunks_) return id;
  ctx.atomic_sub(bump_, 1u);
  // One more look at the reuse queue before reporting exhaustion.
  if (reuse_.try_dequeue(ctx, reused)) {
    return static_cast<std::uint32_t>(reused);
  }
  return kInvalid;
}

void ChunkPool::free(gpu::ThreadCtx& ctx, std::uint32_t chunk) {
  // The queue can report a transient "full" while a dequeuer recycles its
  // slot; with capacity == num_chunks a genuine overflow is impossible.
  while (!reuse_.try_enqueue(ctx, chunk)) ctx.backoff();
}

// ---------------------------------------------------------------------------
// VirtArrayOuroQueue
// ---------------------------------------------------------------------------

VirtArrayOuroQueue::VirtArrayOuroQueue(std::uint64_t* words,
                                       std::uint32_t* readers,
                                       std::size_t slot_cap, ChunkPool& pool)
    : head_(words), tail_(words + 1), slots_(words + 4),
      storage_count_(words + 2), readers_(readers), slot_cap_(slot_cap),
      pool_(&pool) {
  *head_ = 0;
  *tail_ = 0;
  *storage_count_ = 0;
  words[3] = 0;  // reserve slot (chunk id + 1, 0 = empty)
  for (std::size_t i = 0; i < slot_cap_; ++i) {
    slots_[i] = 0;
    readers_[i] = 0;
  }
}

namespace {
/// Storage-chunk source with a one-chunk emergency reserve so a queue that
/// must grow while the pool is momentarily empty can still make progress
/// (retired segments refill the reserve first).
std::uint32_t take_storage(gpu::ThreadCtx& ctx, std::uint64_t* reserve,
                           ChunkPool& pool) {
  const std::uint64_t r = ctx.atomic_exch(reserve, std::uint64_t{0});
  if (r != 0) return static_cast<std::uint32_t>(r - 1);
  return pool.alloc(ctx);
}
void give_storage(gpu::ThreadCtx& ctx, std::uint64_t* reserve,
                  ChunkPool& pool, std::uint32_t chunk) {
  if (ctx.atomic_cas(reserve, std::uint64_t{0},
                     std::uint64_t{chunk} + 1) != 0) {
    pool.free(ctx, chunk);
  }
}
}  // namespace

std::uint32_t VirtArrayOuroQueue::acquire_segment(gpu::ThreadCtx& ctx,
                                                  std::uint64_t seg,
                                                  bool install) {
  const std::size_t slot = seg % slot_cap_;
  const std::uint64_t gen = seg + 1;
  for (;;) {
    ctx.atomic_add(&readers_[slot], 1u);
    const std::uint64_t cur = ctx.atomic_load(&slots_[slot]);
    if ((cur >> 32) == gen) {
      return static_cast<std::uint32_t>(cur);  // reader reference held
    }
    ctx.atomic_sub(&readers_[slot], 1u);
    if (!install) return ChunkPool::kInvalid;
    if (cur == 0) {
      // Install only the tail's *current* segment: an enqueuer holding a
      // stale position must not resurrect a fully-retired generation —
      // nothing would ever retire it again and the slot would wedge.
      if (ctx.atomic_load(tail_) / entries_per_seg() != seg) {
        return ChunkPool::kInvalid;  // caller re-reads the tail
      }
      const std::uint32_t chunk = take_storage(ctx, slots_ - 1, *pool_);
      if (chunk == ChunkPool::kInvalid) return ChunkPool::kInvalid;
      auto* entries = reinterpret_cast<Entry*>(pool_->data(chunk));
      for (std::size_t i = 0; i < entries_per_seg(); ++i) {
        ctx.atomic_store(&entries[i].seq, std::uint64_t{0});
      }
      if (ctx.atomic_cas(&slots_[slot], std::uint64_t{0},
                         slot_pack(gen, chunk)) == 0) {
        ctx.atomic_add(storage_count_, std::uint64_t{1});
        if (ctx.atomic_load(tail_) / entries_per_seg() != seg) {
          // The tail raced past during the install: undo it (retire-style).
          retire_segment(ctx, seg, chunk);
          return ChunkPool::kInvalid;
        }
        continue;  // re-enter and take the reader reference
      }
      give_storage(ctx, slots_ - 1, *pool_, chunk);
      continue;
    }
    // A previous generation still occupies the slot: wait for its retire.
    ctx.backoff();
  }
}

void VirtArrayOuroQueue::release_slot(gpu::ThreadCtx& ctx, std::size_t slot) {
  ctx.atomic_sub(&readers_[slot], 1u);
}

void VirtArrayOuroQueue::retire_segment(gpu::ThreadCtx& ctx, std::uint64_t seg,
                                        std::uint32_t chunk) {
  const std::size_t slot = seg % slot_cap_;
  if (ctx.atomic_cas(&slots_[slot], slot_pack(seg + 1, chunk),
                     std::uint64_t{0}) != slot_pack(seg + 1, chunk)) {
    return;  // somebody else already retired it
  }
  ctx.atomic_sub(storage_count_, std::uint64_t{1});
  // Drain in-flight readers before the chunk's memory is repurposed.
  while (ctx.atomic_load(&readers_[slot]) != 0) ctx.backoff();
  give_storage(ctx, slots_ - 1, *pool_, chunk);
}

bool VirtArrayOuroQueue::try_enqueue(gpu::ThreadCtx& ctx,
                                     std::uint32_t value) {
  const std::size_t eps = entries_per_seg();
  // The ticket is claimed with CAS only once its segment is in hand: a
  // fetch_add ticket taken while storage is unavailable would leave a hole
  // the head can never pass, wedging the queue for good.
  for (unsigned tries = 0;; ++tries) {
    const std::uint64_t in_flight =
        ctx.atomic_load(tail_) - ctx.atomic_load(head_);
    if (in_flight + 2 * eps >= slot_cap_ * eps) return false;  // full
    const std::uint64_t pos = ctx.atomic_load(tail_);
    const std::uint64_t seg = pos / eps;
    const std::uint32_t chunk = acquire_segment(ctx, seg, true);
    if (chunk == ChunkPool::kInvalid) {
      if (tries > 4096) return false;  // storage exhausted: accounted leak
      ctx.backoff();
      continue;
    }
    if (ctx.atomic_cas(tail_, pos, pos + 1) != pos) {
      release_slot(ctx, seg % slot_cap_);
      ctx.backoff();
      continue;
    }
    Entry& e = reinterpret_cast<Entry*>(pool_->data(chunk))[pos % eps];
    // Bounded: the precheck keeps the previous-generation value at this
    // slot strictly behind the head, so its consumer exists.
    while (ctx.atomic_load(&e.seq) != 0) ctx.backoff();
    ctx.atomic_store(&e.val, std::uint64_t{value});
    ctx.atomic_store(&e.seq, pos + 1);
    release_slot(ctx, seg % slot_cap_);
    return true;
  }
}

bool VirtArrayOuroQueue::try_dequeue(gpu::ThreadCtx& ctx,
                                     std::uint32_t& value) {
  const std::size_t eps = entries_per_seg();
  for (;;) {
    const std::uint64_t pos = ctx.atomic_load(head_);
    if (pos >= ctx.atomic_load(tail_)) return false;
    const std::uint64_t seg = pos / eps;
    const std::uint32_t chunk = acquire_segment(ctx, seg, false);
    if (chunk == ChunkPool::kInvalid) return false;  // not published yet
    Entry& e = reinterpret_cast<Entry*>(pool_->data(chunk))[pos % eps];
    if (ctx.atomic_load(&e.seq) != pos + 1) {
      release_slot(ctx, seg % slot_cap_);
      return false;
    }
    if (ctx.atomic_cas(head_, pos, pos + 1) != pos) {
      release_slot(ctx, seg % slot_cap_);
      ctx.backoff();
      continue;
    }
    value = static_cast<std::uint32_t>(ctx.atomic_load(&e.val));
    ctx.atomic_store(&e.seq, std::uint64_t{0});
    release_slot(ctx, seg % slot_cap_);
    if (pos % eps == eps - 1) retire_segment(ctx, seg, chunk);
    return true;
  }
}

std::uint32_t VirtArrayOuroQueue::storage_chunks(gpu::ThreadCtx& ctx) {
  return static_cast<std::uint32_t>(ctx.atomic_load(storage_count_));
}

// ---------------------------------------------------------------------------
// VirtLinkedOuroQueue
// ---------------------------------------------------------------------------

VirtLinkedOuroQueue::VirtLinkedOuroQueue(std::uint64_t* words,
                                         std::size_t num_descs,
                                         ChunkPool& pool)
    : head_(words), tail_(words + 1), front_(words + 2), back_(words + 3),
      storage_count_(words + 4), descs_(words + 6), num_descs_(num_descs),
      desc_free_(words + 6 + 3 * num_descs,
                 num_descs),
      pool_(&pool) {
  *head_ = 0;
  *tail_ = 0;
  *front_ = 0;
  *back_ = 0;
  *storage_count_ = 0;
  words[5] = 0;  // storage reserve
  desc_free_.init_host();
  for (std::size_t d = 1; d < num_descs_; ++d) desc_free_.push_host(d);
}

void VirtLinkedOuroQueue::init_host_first_segment() {
  // Descriptor 0 anchors the chain at position 0 (the chain is never empty).
  const std::uint32_t chunk = pool_->alloc_host();
  auto* entries = reinterpret_cast<Entry*>(pool_->data(chunk));
  for (std::size_t i = 0; i < entries_per_seg(); ++i) entries[i].seq = 0;
  desc(0)[0] = 0;  // base
  desc(0)[1] = (std::uint64_t{chunk} << 32) | kInvalidDesc;
  desc(0)[2] = std::uint64_t{1} << 32;  // active, zero readers
  *storage_count_ = 1;
}

bool VirtLinkedOuroQueue::acquire_desc(gpu::ThreadCtx& ctx, std::uint32_t d) {
  auto* rs = reinterpret_cast<std::uint32_t*>(&desc(d)[2]);
  ctx.atomic_add(&rs[0], 1u);           // readers (low half, little endian)
  if (ctx.atomic_load(&rs[1]) == 1u) {  // state: active
    return true;
  }
  ctx.atomic_sub(&rs[0], 1u);
  return false;
}

void VirtLinkedOuroQueue::release_desc(gpu::ThreadCtx& ctx, std::uint32_t d) {
  auto* rs = reinterpret_cast<std::uint32_t*>(&desc(d)[2]);
  ctx.atomic_sub(&rs[0], 1u);
}

std::uint32_t VirtLinkedOuroQueue::find_segment(gpu::ThreadCtx& ctx,
                                                std::uint64_t pos, bool grow) {
  const std::size_t eps = entries_per_seg();
  for (;;) {
    auto d = static_cast<std::uint32_t>(
        ctx.atomic_load(grow ? back_ : front_));
    bool restart = false;
    while (!restart) {
      if (!acquire_desc(ctx, d)) {
        ctx.backoff();
        restart = true;
        break;
      }
      const std::uint64_t base = ctx.atomic_load(&desc(d)[0]);
      if (pos < base) {
        // The chain advanced past pos (or we entered behind the back hint).
        release_desc(ctx, d);
        if (!grow) return kInvalidDesc;  // dequeuer: head already moved on
        const auto f = static_cast<std::uint32_t>(ctx.atomic_load(front_));
        if (f == d) return kInvalidDesc;  // stale enqueue position: re-read
        d = f;
        continue;
      }
      if (pos < base + eps) return d;  // found; reference held
      const std::uint64_t link = ctx.atomic_load(&desc(d)[1]);
      const auto next = static_cast<std::uint32_t>(link);
      if (next != kInvalidDesc) {
        release_desc(ctx, d);
        d = next;
        continue;
      }
      if (!grow) {
        release_desc(ctx, d);
        return kInvalidDesc;
      }
      // Append a fresh segment ("virtual back" growth, Fig. 7).
      const std::uint32_t chunk = take_storage(ctx, descs_ - 1, *pool_);
      if (chunk == ChunkPool::kInvalid) {
        release_desc(ctx, d);
        return kInvalidDesc;
      }
      std::uint64_t nd64 = 0;
      if (!desc_free_.try_dequeue(ctx, nd64)) {
        give_storage(ctx, descs_ - 1, *pool_, chunk);
        release_desc(ctx, d);
        return kInvalidDesc;
      }
      const auto nd = static_cast<std::uint32_t>(nd64);
      auto* entries = reinterpret_cast<Entry*>(pool_->data(chunk));
      for (std::size_t i = 0; i < eps; ++i) {
        ctx.atomic_store(&entries[i].seq, std::uint64_t{0});
      }
      ctx.atomic_store(&desc(nd)[0], base + eps);
      ctx.atomic_store(&desc(nd)[1],
                       (std::uint64_t{chunk} << 32) | kInvalidDesc);
      ctx.atomic_store(&desc(nd)[2], std::uint64_t{1} << 32);
      const std::uint64_t expect =
          (link & 0xFFFFFFFF00000000ull) | kInvalidDesc;
      const std::uint64_t linked = (link & 0xFFFFFFFF00000000ull) | nd;
      if (ctx.atomic_cas(&desc(d)[1], expect, linked) == expect) {
        ctx.atomic_cas(back_, std::uint64_t{d}, std::uint64_t{nd});
        ctx.atomic_add(storage_count_, std::uint64_t{1});
        release_desc(ctx, d);
        d = nd;
        continue;
      }
      // Lost the append race: recycle and re-read the link.
      ctx.atomic_store(&desc(nd)[2], std::uint64_t{0});
      give_storage(ctx, descs_ - 1, *pool_, chunk);
      desc_free_.try_enqueue(ctx, nd);
      release_desc(ctx, d);
      d = static_cast<std::uint32_t>(ctx.atomic_load(grow ? back_ : front_));
    }
  }
}

void VirtLinkedOuroQueue::advance_front(gpu::ThreadCtx& ctx,
                                        std::uint64_t /*pos*/) {
  // Retire every fully-consumed front segment that has a successor. This
  // must *catch up*: a segment whose last entry was consumed while it was
  // the sole segment gets its retirement deferred until the chain grows, and
  // skipping it then would wedge retirement (and drain the descriptor pool)
  // for good.
  const std::size_t eps = entries_per_seg();
  for (;;) {
    const auto d = static_cast<std::uint32_t>(ctx.atomic_load(front_));
    if (!acquire_desc(ctx, d)) return;
    const std::uint64_t base = ctx.atomic_load(&desc(d)[0]);
    const std::uint64_t link = ctx.atomic_load(&desc(d)[1]);
    const auto next = static_cast<std::uint32_t>(link);
    if (ctx.atomic_load(head_) < base + eps || next == kInvalidDesc) {
      release_desc(ctx, d);  // still live, or sole segment stays cached
      return;
    }
    if (ctx.atomic_cas(front_, std::uint64_t{d}, std::uint64_t{next}) != d) {
      release_desc(ctx, d);
      continue;  // somebody else advanced; re-examine the new front
    }
    // We won the retire: deactivate, drain readers, recycle storage + desc.
    auto* rs = reinterpret_cast<std::uint32_t*>(&desc(d)[2]);
    ctx.atomic_store(&rs[1], 0u);
    release_desc(ctx, d);
    while (ctx.atomic_load(&rs[0]) != 0) ctx.backoff();
    const auto chunk = static_cast<std::uint32_t>(link >> 32);
    ctx.atomic_sub(storage_count_, std::uint64_t{1});
    give_storage(ctx, descs_ - 1, *pool_, chunk);
    desc_free_.try_enqueue(ctx, d);
  }
}

bool VirtLinkedOuroQueue::try_enqueue(gpu::ThreadCtx& ctx,
                                      std::uint32_t value) {
  const std::size_t eps = entries_per_seg();
  // CAS-claimed tickets, as in the VA queue: never take a position whose
  // segment storage is not already in hand (no holes, no wedged head).
  for (unsigned tries = 0;; ++tries) {
    const std::uint64_t in_flight =
        ctx.atomic_load(tail_) - ctx.atomic_load(head_);
    if (in_flight + 2 * eps >= (num_descs_ - 2) * eps) return false;
    const std::uint64_t pos = ctx.atomic_load(tail_);
    const std::uint32_t d = find_segment(ctx, pos, true);
    if (d == kInvalidDesc) {
      if (tries > 4096) return false;  // storage exhausted: accounted leak
      ctx.backoff();
      continue;
    }
    if (ctx.atomic_cas(tail_, pos, pos + 1) != pos) {
      release_desc(ctx, d);
      ctx.backoff();
      continue;
    }
    const std::uint64_t link = ctx.atomic_load(&desc(d)[1]);
    const auto chunk = static_cast<std::uint32_t>(link >> 32);
    Entry& e = reinterpret_cast<Entry*>(pool_->data(chunk))[pos % eps];
    while (ctx.atomic_load(&e.seq) != 0) ctx.backoff();
    ctx.atomic_store(&e.val, std::uint64_t{value});
    ctx.atomic_store(&e.seq, pos + 1);
    release_desc(ctx, d);
    return true;
  }
}

bool VirtLinkedOuroQueue::try_dequeue(gpu::ThreadCtx& ctx,
                                      std::uint32_t& value) {
  const std::size_t eps = entries_per_seg();
  for (;;) {
    const std::uint64_t pos = ctx.atomic_load(head_);
    if (pos >= ctx.atomic_load(tail_)) return false;
    const std::uint32_t d = find_segment(ctx, pos, false);
    if (d == kInvalidDesc) return false;
    const std::uint64_t link = ctx.atomic_load(&desc(d)[1]);
    const auto chunk = static_cast<std::uint32_t>(link >> 32);
    Entry& e = reinterpret_cast<Entry*>(pool_->data(chunk))[pos % eps];
    if (ctx.atomic_load(&e.seq) != pos + 1) {
      release_desc(ctx, d);
      return false;
    }
    if (ctx.atomic_cas(head_, pos, pos + 1) != pos) {
      release_desc(ctx, d);
      ctx.backoff();
      continue;
    }
    value = static_cast<std::uint32_t>(ctx.atomic_load(&e.val));
    ctx.atomic_store(&e.seq, std::uint64_t{0});
    release_desc(ctx, d);
    if (pos % eps == eps - 1) advance_front(ctx, pos);
    return true;
  }
}

std::uint32_t VirtLinkedOuroQueue::storage_chunks(gpu::ThreadCtx& ctx) {
  return static_cast<std::uint32_t>(ctx.atomic_load(storage_count_));
}

// ---------------------------------------------------------------------------
// Ouroboros manager
// ---------------------------------------------------------------------------

Ouroboros::Ouroboros(gpu::Device& dev, std::size_t heap_bytes, Config cfg)
    : cfg_(cfg),
      classes_(alloc_core::SizeClassMap::geometric(16, static_cast<unsigned>(
                                                           cfg.num_classes))),
      queues_(cfg.num_classes) {
  core::Stopwatch timer;
  const char* name = nullptr;
  switch (cfg_.queue) {
    case QueueKind::kStandard:
      name = cfg_.chunk_based ? "Ouro-C-S" : "Ouro-P-S";
      break;
    case QueueKind::kVirtArray:
      name = cfg_.chunk_based ? "Ouro-C-VA" : "Ouro-P-VA";
      break;
    case QueueKind::kVirtLinked:
      name = cfg_.chunk_based ? "Ouro-C-VL" : "Ouro-P-VL";
      break;
  }
  traits_ = core::AllocatorTraits{
      .name = name,
      .family = "Ouroboros",
      .paper_ref = "[21], ICS 2020",
      .year = 2020,
      .general_purpose = true,
      .supports_free = true,
      .individual_free = true,
      .max_direct_size = class_bytes(cfg_.num_classes - 1),
      .relays_large_to_system = true,
      .resizable = true,
      .its_safe = true,  // paper: works natively on Volta+
      .stable = true,
      .malloc_state_bytes = cfg_.chunk_based ? 50u : 40u,
      .free_state_bytes = 22u,
  };

  // The standard queues' static storage is their documented weakness; still,
  // never let it swallow a small heap — cap the rings at ~12 % of the heap.
  if (cfg_.queue == QueueKind::kStandard) {
    const std::size_t budget_entries =
        heap_bytes / 8 / (cfg_.num_classes * 2 * sizeof(std::uint64_t));
    cfg_.standard_capacity =
        std::max<std::size_t>(256,
                              std::min(cfg_.standard_capacity, budget_entries));
  }

  alloc_core::SubArena carver(dev, heap_bytes);
  leak_counter_ = carver.take<std::uint64_t>(1, alignof(std::uint64_t),
                                             "leak-counter");
  *leak_counter_ = 0;
  // Per-class spill-stack tops for the virtualized page-based variants
  // (carved unconditionally — 80 bytes — so the layout does not depend on
  // the queue kind). 0 = empty.
  spill_tops_ = carver.take<std::uint64_t>(cfg_.num_classes,
                                           alignof(std::uint64_t),
                                           "spill-tops");
  for (std::size_t c = 0; c < cfg_.num_classes; ++c) spill_tops_[c] = 0;

  // Upper bound on chunk count (metadata sized before the exact data region
  // is known; the carver take_rest below fixes the final count).
  const std::size_t est_chunks = heap_bytes / cfg_.chunk_bytes + 1;
  meta_ = carver.take<ChunkMeta>(est_chunks, alignof(ChunkMeta), "chunk-meta");
  auto* reuse_words = carver.take<std::uint64_t>(
      1 + BoundedTicketQueue::layout_words(est_chunks),
      alignof(std::uint64_t), "chunk-reuse-queue");

  std::vector<std::uint64_t*> queue_words(cfg_.num_classes);
  std::vector<std::uint32_t*> va_readers(cfg_.num_classes, nullptr);
  for (std::size_t c = 0; c < cfg_.num_classes; ++c) {
    switch (cfg_.queue) {
      case QueueKind::kStandard:
        queue_words[c] = carver.take<std::uint64_t>(
            BoundedTicketQueue::layout_words(cfg_.standard_capacity),
            alignof(std::uint64_t), "page-queues");
        break;
      case QueueKind::kVirtArray:
        queue_words[c] = carver.take<std::uint64_t>(
            VirtArrayOuroQueue::layout_words(cfg_.va_slots),
            alignof(std::uint64_t), "page-queues");
        va_readers[c] = carver.take<std::uint32_t>(
            cfg_.va_slots, alignof(std::uint32_t), "va-readers");
        break;
      case QueueKind::kVirtLinked:
        queue_words[c] = carver.take<std::uint64_t>(
            VirtLinkedOuroQueue::layout_words(cfg_.vl_descs),
            alignof(std::uint64_t), "page-queues");
        break;
    }
  }

  const std::size_t relay_bytes = heap_bytes * cfg_.relay_percent / 100;
  std::size_t rest = 0;
  auto* region = carver.take_rest(rest, cfg_.chunk_bytes, "chunks");
  auto* relay_base = region + (rest - relay_bytes) / cfg_.chunk_bytes *
                                  cfg_.chunk_bytes;
  const auto num_chunks = static_cast<std::uint32_t>(
      static_cast<std::size_t>(relay_base - region) / cfg_.chunk_bytes);
  pool_.init_host(region, num_chunks, cfg_.chunk_bytes, reuse_words);
  for (std::uint32_t i = 0; i < num_chunks; ++i) meta_[i].state = 0;

  for (std::size_t c = 0; c < cfg_.num_classes; ++c) {
    switch (cfg_.queue) {
      case QueueKind::kStandard:
        queues_[c] = std::make_unique<StandardOuroQueue>(
            queue_words[c], cfg_.standard_capacity);
        break;
      case QueueKind::kVirtArray:
        queues_[c] = std::make_unique<VirtArrayOuroQueue>(
            queue_words[c], va_readers[c], cfg_.va_slots, pool_);
        break;
      case QueueKind::kVirtLinked: {
        auto q = std::make_unique<VirtLinkedOuroQueue>(queue_words[c],
                                                       cfg_.vl_descs, pool_);
        q->init_host_first_segment();
        queues_[c] = std::move(q);
        break;
      }
    }
  }
  relay_.engage(relay_base,
                rest - static_cast<std::size_t>(relay_base - region));
  init_ms_ = timer.elapsed_ms();
}

const alloc_core::SizeClassMap& Ouroboros::page_classes() {
  static const alloc_core::SizeClassMap map =
      alloc_core::SizeClassMap::geometric(16, kNumClasses);
  return map;
}

const core::ConfigSchema<Ouroboros::Config>& Ouroboros::config_schema() {
  using core::Pow2;
  static const auto schema = [] {
    core::ConfigSchema<Config> s;
    s.u64("chunk_bytes", &Config::chunk_bytes, 1024, std::size_t{1} << 20,
          Pow2::kYes, {4096, 8192, 16384, 32768})
        .u64("standard_capacity", &Config::standard_capacity, 256,
             std::size_t{1} << 20, Pow2::kYes, {1u << 14, 1u << 16, 1u << 18})
        .u64("va_slots", &Config::va_slots, 64, std::size_t{1} << 16,
             Pow2::kYes, {1u << 10, 1u << 12, 1u << 14})
        .u64("vl_descs", &Config::vl_descs, 64, std::size_t{1} << 16,
             Pow2::kYes, {1u << 10, 1u << 12, 1u << 14})
        .u64("relay_percent", &Config::relay_percent, 2, 60, Pow2::kNo,
             {5, 10, 20, 33})
        .u64("num_classes", &Config::num_classes, 1,
             alloc_core::SizeClassMap::kMaxClasses, Pow2::kNo, {8, 10, 12})
        .check([](const Config& c) {
          if (class_bytes(c.num_classes - 1) > c.chunk_bytes) {
            throw core::ConfigError(
                core::ConfigError::Kind::kOutOfRange, "num_classes",
                "config field 'num_classes': top page class " +
                    std::to_string(class_bytes(c.num_classes - 1)) +
                    " B exceeds chunk_bytes");
          }
        });
    return s;
  }();
  return schema;
}

const core::AllocatorTraits& Ouroboros::traits() const { return traits_; }

core::AuditResult Ouroboros::audit() {
  core::AuditResult result;
  result.supported = true;
  auto fail = [&result](std::string what) {
    ++result.failures;
    if (result.detail.empty()) result.detail = std::move(what);
  };
  for (std::uint32_t c = 0; c < pool_.num_chunks(); ++c) {
    ++result.structures_walked;
    const std::uint64_t state = std::atomic_ref<std::uint64_t>(meta_[c].state)
                                    .load(std::memory_order_acquire);
    if (state == 0) continue;  // never assigned / fully recycled
    const auto cls_tag = static_cast<std::uint32_t>(state >> 32);
    if (cls_tag == 0 || cls_tag > cfg_.num_classes) {
      fail("ouroboros: chunk " + std::to_string(c) +
           " carries impossible class tag " + std::to_string(cls_tag));
      continue;
    }
    const std::size_t ppc = pages_per_chunk(cls_tag - 1);
    const auto free_count = static_cast<std::uint32_t>(state);
    if (free_count > ppc) {
      fail("ouroboros: chunk " + std::to_string(c) + " free count " +
           std::to_string(free_count) + " exceeds its " +
           std::to_string(ppc) + " pages");
      continue;
    }
    if (!cfg_.chunk_based) {
      // Page-based variants never touch the counter half of the word.
      if (free_count != 0) {
        fail("ouroboros: page-based chunk " + std::to_string(c) +
             " has a nonzero free counter");
      }
      continue;
    }
    std::size_t used = 0;
    for (std::size_t w = 0; w < 8; ++w) {
      std::uint64_t bits = std::atomic_ref<std::uint64_t>(meta_[c].bitmap[w])
                               .load(std::memory_order_acquire);
      std::uint64_t valid = ~0ull;
      if (w * 64 >= ppc) {
        valid = 0;
      } else if ((w + 1) * 64 > ppc && ppc % 64 != 0) {
        valid = (1ull << (ppc % 64)) - 1;
      }
      if ((bits & ~valid) != 0) {
        fail("ouroboros: chunk " + std::to_string(c) +
             " claims pages beyond its capacity");
        break;
      }
      used += static_cast<std::size_t>(std::popcount(bits));
    }
    // Reserved-but-unclaimed pages from a cancelled malloc make the sum
    // fall short (leakage); exceeding ppc is impossible without corruption.
    if (free_count + used > ppc) {
      fail("ouroboros: chunk " + std::to_string(c) + " accounts for " +
           std::to_string(free_count + used) + " of " + std::to_string(ppc) +
           " pages");
    }
  }
  result.ok = result.failures == 0;
  return result;
}

void Ouroboros::spill_push(gpu::ThreadCtx& ctx, std::size_t cls,
                           std::uint32_t unit) {
  // The page is free and exclusively ours, so its first 8 bytes can carry
  // the link (pages are >= 16 bytes and 16-aligned in the pool).
  auto* next_word =
      reinterpret_cast<std::uint64_t*>(pool_.base() + std::size_t{unit} * 16);
  for (std::uint64_t cur = ctx.atomic_load(&spill_tops_[cls]);;) {
    ctx.atomic_store(next_word, cur);
    const std::uint64_t fresh =
        (((cur >> 32) + 1) << 32) | (std::uint64_t{unit} + 1);
    const std::uint64_t got = ctx.atomic_cas(&spill_tops_[cls], cur, fresh);
    if (got == cur) return;
    cur = got;
    ctx.backoff();
  }
}

bool Ouroboros::spill_pop(gpu::ThreadCtx& ctx, std::size_t cls,
                          std::uint32_t& unit) {
  for (std::uint64_t cur = ctx.atomic_load(&spill_tops_[cls]);;) {
    const auto packed = static_cast<std::uint32_t>(cur);
    if (packed == 0) return false;  // empty
    auto* next_word = reinterpret_cast<std::uint64_t*>(
        pool_.base() + std::size_t{packed - 1} * 16);
    // If the top page was popped and reallocated concurrently this read is
    // application garbage — harmless, because the tag half of `cur` changed
    // with that pop and our CAS below fails without installing it.
    const std::uint64_t next = ctx.atomic_load(next_word);
    const std::uint64_t fresh =
        (((cur >> 32) + 1) << 32) | (next & 0xFFFFFFFFull);
    const std::uint64_t got = ctx.atomic_cas(&spill_tops_[cls], cur, fresh);
    if (got == cur) {
      unit = packed - 1;
      return true;
    }
    cur = got;
    ctx.backoff();
  }
}

void* Ouroboros::malloc_page_based(gpu::ThreadCtx& ctx, std::size_t cls) {
  std::uint32_t unit = 0;
  if (queues_[cls]->try_dequeue(ctx, unit)) {
    return pool_.base() + std::size_t{unit} * 16;
  }
  if (virtualized() && spill_pop(ctx, cls, unit)) {
    return pool_.base() + std::size_t{unit} * 16;
  }
  const std::uint32_t chunk = pool_.alloc(ctx);
  if (chunk == ChunkPool::kInvalid) {
    // Pool exhausted. The page queue is still live — racing frees (and the
    // splits of chunks other lanes just took) refill it continuously, and
    // the earlier miss may itself have been a transient publish race. Giving
    // up after that one look reported exhaustion-scale failure counts under
    // steady-state churn where pages demonstrably exist (EXPERIMENTS.md,
    // the Ouro-P-S base_failed case): re-poll boundedly before failing.
    for (unsigned attempt = 0; attempt < kExhaustedRedequeues; ++attempt) {
      if (queues_[cls]->try_dequeue(ctx, unit)) {
        return pool_.base() + std::size_t{unit} * 16;
      }
      if (virtualized() && spill_pop(ctx, cls, unit)) {
        return pool_.base() + std::size_t{unit} * 16;
      }
      ctx.backoff();
    }
    return nullptr;
  }
  ctx.atomic_store(&meta_[chunk].state,
                   (std::uint64_t{cls + 1} << 32));  // class tag for free()
  const std::size_t ppc = pages_per_chunk(cls);
  const std::size_t page_units = class_bytes(cls) / 16;
  const std::size_t chunk_unit =
      (pool_.data(chunk) - pool_.base()) / 16;
  for (std::size_t p = 1; p < ppc; ++p) {
    const auto u = static_cast<std::uint32_t>(chunk_unit + p * page_units);
    if (!queues_[cls]->try_enqueue(ctx, u)) {
      if (virtualized()) {
        spill_push(ctx, cls, u);
      } else {
        ctx.atomic_add(leak_counter_, std::uint64_t{1});
      }
    }
  }
  return pool_.data(chunk);
}

void Ouroboros::free_page_based(gpu::ThreadCtx& ctx, std::uint32_t chunk,
                                std::size_t off_in_chunk) {
  const std::uint64_t state = ctx.atomic_load(&meta_[chunk].state);
  const std::size_t cls = (state >> 32) - 1;
  const std::size_t page = off_in_chunk / class_bytes(cls);
  const std::size_t unit =
      (pool_.data(chunk) - pool_.base()) / 16 + page * (class_bytes(cls) / 16);
  if (!queues_[cls]->try_enqueue(ctx, static_cast<std::uint32_t>(unit))) {
    if (virtualized()) {
      spill_push(ctx, cls, static_cast<std::uint32_t>(unit));
    } else {
      ctx.atomic_add(leak_counter_, std::uint64_t{1});
    }
  }
}

void* Ouroboros::claim_page_bit(gpu::ThreadCtx& ctx, std::uint32_t chunk,
                                std::size_t cls) {
  const std::size_t ppc = pages_per_chunk(cls);
  ChunkMeta& m = meta_[chunk];
  for (;;) {
    for (std::size_t w = 0; w < (ppc + 63) / 64; ++w) {
      const std::uint64_t seen = ctx.atomic_load(&m.bitmap[w]);
      std::uint64_t valid = ~0ull;
      if ((w + 1) * 64 > ppc && ppc % 64 != 0) {
        valid = (1ull << (ppc % 64)) - 1;
      }
      const std::uint64_t free_bits = ~seen & valid;
      if (free_bits == 0) continue;
      const unsigned bit = static_cast<unsigned>(std::countr_zero(free_bits));
      if ((ctx.atomic_or(&m.bitmap[w], std::uint64_t{1} << bit) &
           (std::uint64_t{1} << bit)) == 0) {
        return pool_.data(chunk) + (w * 64 + bit) * class_bytes(cls);
      }
    }
    ctx.backoff();  // racing reservation has not set its bit yet
  }
}

void* Ouroboros::scavenge_chunk_page(gpu::ThreadCtx& ctx, std::size_t cls) {
  const std::size_t ppc = pages_per_chunk(cls);
  for (std::uint32_t c = 0; c < pool_.num_chunks(); ++c) {
    ChunkMeta& m = meta_[c];
    // Same single-CAS tag-validated debit as the queue path: a retired or
    // recycled chunk fails the tag check and is skipped.
    std::uint32_t prev = 0;
    for (std::uint64_t cur = ctx.atomic_load(&m.state); prev == 0;) {
      const auto cnt = static_cast<std::uint32_t>(cur);
      if ((cur >> 32) != cls + 1 || cnt == 0 || cnt > ppc) break;
      const std::uint64_t got = ctx.atomic_cas(&m.state, cur, cur - 1);
      if (got == cur) prev = cnt;
      cur = got;
    }
    if (prev == 0) continue;
    if (prev >= 2) {
      // Best-effort re-advertise; a failed enqueue stays rediscoverable by
      // the next scavenge, so it is not a leak here.
      queues_[cls]->try_enqueue(ctx, c);
    }
    return claim_page_bit(ctx, c, cls);
  }
  return nullptr;
}

void* Ouroboros::malloc_chunk_based(gpu::ThreadCtx& ctx, std::size_t cls) {
  const std::size_t ppc = pages_per_chunk(cls);
  for (unsigned exhausted_polls = 0;;) {
    for (unsigned attempt = 0; attempt < 64; ++attempt) {
      std::uint32_t chunk = 0;
      if (!queues_[cls]->try_dequeue(ctx, chunk)) break;
      ChunkMeta& m = meta_[chunk];
      // Stage 1: reserve a free page with ONE 64-bit CAS over the whole
      // {class tag : count} state, so the tag is validated in the same
      // atomic step that debits the count. The previous fetch_sub +
      // blind-undo scheme had a recycling race: a sub landing on a retired
      // id (state 0, stale queue entry) was "undone" with a plain add that
      // could arrive AFTER a splitter re-initialised the chunk for a new
      // generation — inflating the fresh count by one, letting the chunk
      // retire with a page still live, and sending that page's eventual
      // free through a zero class tag ((state >> 32) - 1 underflows and
      // class_bytes() shifts by SIZE_MAX).
      std::uint32_t prev = 0;
      for (std::uint64_t cur = ctx.atomic_load(&m.state); prev == 0;) {
        const auto cnt = static_cast<std::uint32_t>(cur);
        if ((cur >> 32) != cls + 1 || cnt == 0 || cnt > ppc) break;
        const std::uint64_t got = ctx.atomic_cas(&m.state, cur, cur - 1);
        if (got == cur) prev = cnt;
        cur = got;
      }
      if (prev == 0) continue;  // stale id (retired/recycled chunk): skip
      if (prev >= 2) {
        // Still has pages: make the chunk findable again. On -VA/-VL a
        // failed enqueue is not a loss — the state word still carries the
        // class tag and count, so the exhaustion scavenger rediscovers it.
        if (!queues_[cls]->try_enqueue(ctx, chunk) && !virtualized()) {
          ctx.atomic_add(leak_counter_, std::uint64_t{1});
        }
      }
      // Stage 2: claim a concrete page bit.
      return claim_page_bit(ctx, chunk, cls);
    }
    // Queue empty: split a fresh chunk ("allocate from chunk in queue"
    // misses).
    const std::uint32_t chunk = pool_.alloc(ctx);
    if (chunk == ChunkPool::kInvalid) {
      // The virtualized variants promise zero leakage: before conceding
      // OOM, rediscover any chunk whose advertise-enqueue failed.
      if (virtualized()) {
        if (void* p = scavenge_chunk_page(ctx, cls)) return p;
      }
      // Same bounded re-poll as the page-based path: at exhaustion the
      // chunk queue keeps being refilled by racing frees, so one missed
      // pass over it is not proof of an empty heap — loop back into the
      // dequeue scan.
      if (exhausted_polls++ >= kExhaustedRedequeues) return nullptr;
      ctx.backoff();
      continue;
    }
    ChunkMeta& m = meta_[chunk];
    for (auto& w : m.bitmap) ctx.atomic_store(&w, std::uint64_t{0});
    ctx.atomic_store(&m.bitmap[0], std::uint64_t{1});  // page 0 is ours
    ctx.atomic_store(&m.state, (std::uint64_t{cls + 1} << 32) |
                                   static_cast<std::uint32_t>(ppc - 1));
    if (ppc > 1 && !queues_[cls]->try_enqueue(ctx, chunk) && !virtualized()) {
      ctx.atomic_add(leak_counter_, std::uint64_t{1});
    }
    return pool_.data(chunk);
  }
}

void Ouroboros::free_chunk_based(gpu::ThreadCtx& ctx, std::uint32_t chunk,
                                 std::size_t off_in_chunk) {
  ChunkMeta& m = meta_[chunk];
  const std::uint64_t state = ctx.atomic_load(&m.state);
  const std::size_t tag = state >> 32;
  if (tag == 0 || tag > cfg_.num_classes) {
    // No generation to return into (the chunk was retired — an application
    // double free, or a page lost to a cancelled kernel whose chunk has
    // since been recycled): account it as leakage instead of deriving a
    // class from an empty tag (the -1 underflow would shift by SIZE_MAX).
    ctx.atomic_add(leak_counter_, std::uint64_t{1});
    return;
  }
  const std::size_t cls = tag - 1;
  const std::size_t ppc = pages_per_chunk(cls);
  const std::size_t page = off_in_chunk / class_bytes(cls);
  ctx.atomic_and(&m.bitmap[page / 64],
                 ~(std::uint64_t{1} << (page % 64)));
  auto* count = reinterpret_cast<std::uint32_t*>(&m.state);
  const std::uint32_t prev = ctx.atomic_add(count, 1u);
  if (prev == 0) {
    // Chunk went from exhausted to usable: advertise it again (on the
    // virtualized variants a failed advertise stays scavengeable).
    if (!queues_[cls]->try_enqueue(ctx, chunk) && !virtualized()) {
      ctx.atomic_add(leak_counter_, std::uint64_t{1});
    }
  } else if (prev + 1 == ppc) {
    // Fully free: the chunk-based design's pay-off — reuse for any purpose.
    if (ctx.atomic_cas(&m.state,
                       (std::uint64_t{cls + 1} << 32) |
                           static_cast<std::uint32_t>(ppc),
                       std::uint64_t{0}) ==
        ((std::uint64_t{cls + 1} << 32) | static_cast<std::uint32_t>(ppc))) {
      pool_.free(ctx, chunk);
    }
  }
}

void* Ouroboros::malloc(gpu::ThreadCtx& ctx, std::size_t size) {
  if (size == 0) size = 1;
  const unsigned cls = classes_.class_for(size);
  if (cls == alloc_core::SizeClassMap::kNoClass) {
    return relay_.malloc(ctx, size);
  }
  return cfg_.chunk_based ? malloc_chunk_based(ctx, cls)
                          : malloc_page_based(ctx, cls);
}

void Ouroboros::free(gpu::ThreadCtx& ctx, void* ptr) {
  if (ptr == nullptr) return;
  auto* p = static_cast<std::byte*>(ptr);
  if (relay_.owns(p)) {
    relay_.free(ctx, ptr);
    return;
  }
  const std::size_t off = static_cast<std::size_t>(p - pool_.base());
  const auto chunk = static_cast<std::uint32_t>(off / cfg_.chunk_bytes);
  const std::size_t in_chunk = off % cfg_.chunk_bytes;
  if (cfg_.chunk_based) {
    free_chunk_based(ctx, chunk, in_chunk);
  } else {
    free_page_based(ctx, chunk, in_chunk);
  }
}

}  // namespace gms::alloc
