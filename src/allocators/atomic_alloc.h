#pragma once

#include "allocators/common.h"

namespace gms::alloc {

/// The paper's Baseline (§4): "a simple memory manager built on atomics on a
/// shared offset". One fetch_add per allocation, no deallocation — "no true
/// memory manager due to the lack of deallocation", but the lower bound every
/// real manager is measured against.
class AtomicAlloc final : public core::MemoryManager {
 public:
  AtomicAlloc(gpu::Device& dev, std::size_t heap_bytes);

  [[nodiscard]] const core::AllocatorTraits& traits() const override;
  [[nodiscard]] void* malloc(gpu::ThreadCtx& ctx, std::size_t size) override;
  void free(gpu::ThreadCtx& ctx, void* ptr) override;

 private:
  std::uint64_t* offset_;  // shared bump offset, lives in the arena
  std::byte* data_;
  std::size_t capacity_;
};

}  // namespace gms::alloc
