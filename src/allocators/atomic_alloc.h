#pragma once

#include "allocators/common.h"

namespace gms::alloc {

/// The paper's Baseline (§4): "a simple memory manager built on atomics on a
/// shared offset". One fetch_add per allocation, no deallocation — "no true
/// memory manager due to the lack of deallocation", but the lower bound every
/// real manager is measured against.
class AtomicAlloc final : public core::MemoryManager {
 public:
  struct Config {
    /// Request rounding granule (bytes, pow2). 16 matches every surveyed
    /// manager's base granularity and is the byte-identical default.
    std::size_t granule = 16;
  };

  /// Schema binding Config to the runtime "{k=v}" layer (atomic_alloc.cpp).
  static const core::ConfigSchema<Config>& config_schema();

  AtomicAlloc(gpu::Device& dev, std::size_t heap_bytes, Config cfg);
  AtomicAlloc(gpu::Device& dev, std::size_t heap_bytes)
      : AtomicAlloc(dev, heap_bytes, Config{}) {}

  [[nodiscard]] const core::AllocatorTraits& traits() const override;
  [[nodiscard]] void* malloc(gpu::ThreadCtx& ctx, std::size_t size) override;
  void free(gpu::ThreadCtx& ctx, void* ptr) override;

  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  Config cfg_;
  std::uint64_t* offset_;  // shared bump offset, lives in the arena
  std::byte* data_;
  std::size_t capacity_;
};

}  // namespace gms::alloc
