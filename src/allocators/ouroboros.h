#pragma once

#include <array>
#include <memory>
#include <vector>

#include "alloc_core/large_relay.h"
#include "alloc_core/size_class_map.h"
#include "allocators/common.h"
#include "allocators/lockfree_queue.h"

namespace gms::alloc {

/// Shared chunk pool: the manageable memory split into equally-sized chunks
/// (§2.10, default 8 KiB). Chunks feed data pages *and* — for the virtualized
/// variants — the queues' own storage: the queues managing memory live on the
/// memory they manage, hence the snake eating its tail.
class ChunkPool {
 public:
  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;

  void init_host(std::byte* data, std::uint32_t num_chunks,
                 std::size_t chunk_bytes, std::uint64_t* reuse_words);

  std::uint32_t alloc(gpu::ThreadCtx& ctx);
  void free(gpu::ThreadCtx& ctx, std::uint32_t chunk);
  /// Constructor-time chunk grab (before the pool is shared with lanes).
  std::uint32_t alloc_host() { return (*bump_)++; }

  [[nodiscard]] std::byte* data(std::uint32_t chunk) {
    return data_ + std::size_t{chunk} * chunk_bytes_;
  }
  [[nodiscard]] std::uint32_t num_chunks() const { return num_chunks_; }
  [[nodiscard]] std::size_t chunk_bytes() const { return chunk_bytes_; }
  [[nodiscard]] std::byte* base() { return data_; }

 private:
  std::byte* data_ = nullptr;
  std::uint32_t num_chunks_ = 0;
  std::size_t chunk_bytes_ = 0;
  std::uint32_t* bump_ = nullptr;    // first word of reuse storage block
  BoundedTicketQueue reuse_;
};

/// Index-queue interface shared by the three queue designs of Fig. 7.
/// Values are 16 B-unit offsets (pages) or chunk ids. Both sides are
/// non-blocking; a false dequeue sends the allocator down its slow path and
/// a false enqueue is an accounted leak (bounded-capacity overflow).
class OuroQueue {
 public:
  virtual ~OuroQueue() = default;
  virtual bool try_enqueue(gpu::ThreadCtx& ctx, std::uint32_t value) = 0;
  virtual bool try_dequeue(gpu::ThreadCtx& ctx, std::uint32_t& value) = 0;
  /// Chunks of queue *storage* currently held (0 for the standard queue).
  [[nodiscard]] virtual std::uint32_t storage_chunks(gpu::ThreadCtx& ctx) = 0;
};

/// Ouro-S: the static ring buffer. Fast and simple, but its storage must be
/// "large enough to hold the largest expected number of free pages/chunks" —
/// the static-memory weakness that motivates the virtualized designs.
class StandardOuroQueue final : public OuroQueue {
 public:
  StandardOuroQueue(std::uint64_t* words, std::size_t capacity)
      : queue_(words, capacity) {
    queue_.init_host();
  }
  bool try_enqueue(gpu::ThreadCtx& ctx, std::uint32_t value) override {
    return queue_.try_enqueue(ctx, value);
  }
  bool try_dequeue(gpu::ThreadCtx& ctx, std::uint32_t& value) override {
    std::uint64_t v = 0;
    if (!queue_.try_dequeue(ctx, v)) return false;
    value = static_cast<std::uint32_t>(v);
    return true;
  }
  std::uint32_t storage_chunks(gpu::ThreadCtx&) override { return 0; }

 private:
  BoundedTicketQueue queue_;
};

/// Ouro-VA: virtualized array-hierarchy queue. Queue storage lives on
/// dynamically allocated chunks referenced from a small chunk-pointer array;
/// segments are installed as the back grows and retired (returned to the
/// chunk pool) as the front drains. Per-slot reader counters (stable side
/// memory) fence segment retirement against in-flight readers.
class VirtArrayOuroQueue final : public OuroQueue {
 public:
  /// words: [head, tail, slot_cap x slot word] ; readers: slot_cap counters.
  VirtArrayOuroQueue(std::uint64_t* words, std::uint32_t* readers,
                     std::size_t slot_cap, ChunkPool& pool);

  bool try_enqueue(gpu::ThreadCtx& ctx, std::uint32_t value) override;
  bool try_dequeue(gpu::ThreadCtx& ctx, std::uint32_t& value) override;
  std::uint32_t storage_chunks(gpu::ThreadCtx& ctx) override;

  /// words layout: head, tail, storage_count, reserve, slot_cap slot words.
  static constexpr std::size_t layout_words(std::size_t slot_cap) {
    return 4 + slot_cap;
  }

 private:
  struct Entry {
    std::uint64_t seq;  // 0 = reusable, pos+1 = published
    std::uint64_t val;
  };
  [[nodiscard]] std::size_t entries_per_seg() const {
    return pool_->chunk_bytes() / sizeof(Entry);
  }
  static std::uint64_t slot_pack(std::uint64_t gen, std::uint32_t chunk) {
    return (gen << 32) | chunk;
  }

  /// Resolves the segment chunk for `seg` (generation-checked), installing a
  /// fresh one when the caller is an enqueuer. Returns kInvalid when the
  /// caller should back off / report empty. On success the caller holds a
  /// reader reference on the slot and must call release_slot().
  std::uint32_t acquire_segment(gpu::ThreadCtx& ctx, std::uint64_t seg,
                                bool install);
  void release_slot(gpu::ThreadCtx& ctx, std::size_t slot);
  void retire_segment(gpu::ThreadCtx& ctx, std::uint64_t seg,
                      std::uint32_t chunk);

  std::uint64_t* head_ = nullptr;
  std::uint64_t* tail_ = nullptr;
  std::uint64_t* slots_ = nullptr;  // {gen+1 : high, chunk : low}
  std::uint64_t* storage_count_ = nullptr;
  std::uint32_t* readers_ = nullptr;
  std::size_t slot_cap_ = 0;
  ChunkPool* pool_ = nullptr;
};

/// Ouro-VL: virtualized linked-chunk queue. No pointer array at all — the
/// storage chunks are linked through descriptors; front/back descriptor
/// indices replace the array. Unlimited virtual queue size (bounded here by
/// the descriptor pool), at the price of pointer chasing on the walk.
class VirtLinkedOuroQueue final : public OuroQueue {
 public:
  VirtLinkedOuroQueue(std::uint64_t* words, std::size_t num_descs,
                      ChunkPool& pool);

  bool try_enqueue(gpu::ThreadCtx& ctx, std::uint32_t value) override;
  bool try_dequeue(gpu::ThreadCtx& ctx, std::uint32_t& value) override;
  std::uint32_t storage_chunks(gpu::ThreadCtx& ctx) override;

  /// words layout: head, tail, front, back, storage_count, reserve,
  ///               per-desc {base, chunk|next, readers|state} (3 words each),
  ///               desc free queue.
  static constexpr std::size_t layout_words(std::size_t num_descs) {
    return 6 + 3 * num_descs + BoundedTicketQueue::layout_words(num_descs);
  }

  /// Host-side: creates the initial (base 0) segment. Call once.
  void init_host_first_segment();

 private:
  struct Entry {
    std::uint64_t seq;
    std::uint64_t val;
  };
  static constexpr std::uint32_t kInvalidDesc = 0xFFFFFFFFu;
  // desc words: [0] base pos, [1] {chunk:high32, next:low32},
  //             [2] {state:high32 (1=active), readers:low32}
  [[nodiscard]] std::uint64_t* desc(std::uint32_t d) {
    return descs_ + std::size_t{d} * 3;
  }
  [[nodiscard]] std::size_t entries_per_seg() const {
    return pool_->chunk_bytes() / sizeof(Entry);
  }

  /// Walks the chain from `start` for the segment covering `pos`; grows the
  /// chain when `grow` and the position is beyond the back. On success the
  /// caller holds a reader reference (release_desc()). Returns kInvalidDesc
  /// when the segment is unavailable (report empty / retry).
  std::uint32_t find_segment(gpu::ThreadCtx& ctx, std::uint64_t pos,
                             bool grow);
  bool acquire_desc(gpu::ThreadCtx& ctx, std::uint32_t d);
  void release_desc(gpu::ThreadCtx& ctx, std::uint32_t d);
  void advance_front(gpu::ThreadCtx& ctx, std::uint64_t pos);

  std::uint64_t* head_ = nullptr;
  std::uint64_t* tail_ = nullptr;
  std::uint64_t* front_ = nullptr;   // desc index (low 32 bits used)
  std::uint64_t* back_ = nullptr;
  std::uint64_t* storage_count_ = nullptr;
  std::uint64_t* descs_ = nullptr;
  std::size_t num_descs_ = 0;
  BoundedTicketQueue desc_free_;
  ChunkPool* pool_ = nullptr;
};

/// Ouroboros (Winter et al., ICS 2020) — §2.10 / Fig. 7. One index queue per
/// page size; chunks are split into pages on demand.
///
///  * Page variants (-P) enqueue page offsets directly: fast, but a chunk
///    assigned to a page size is never reusable for another.
///  * Chunk variants (-C) enqueue chunk ids with free-page bookkeeping: a
///    two-stage access design that trades speed for full chunk reuse.
///  * Queue storage: -S static rings, -VA array-hierarchy virtualized,
///    -VL linked-chunk virtualized.
///
/// Requests above the largest page size are relayed to the CUDA stand-in
/// ("otherwise larger allocations are relayed to the CUDA-Allocator").
class Ouroboros final : public core::MemoryManager {
 public:
  enum class QueueKind { kStandard, kVirtArray, kVirtLinked };

  struct Config {
    QueueKind queue = QueueKind::kStandard;
    bool chunk_based = false;
    std::size_t chunk_bytes = 8192;
    std::size_t standard_capacity = 1u << 16;  ///< entries per -S queue
    std::size_t va_slots = 1u << 12;           ///< chunk-pointer array size
    std::size_t vl_descs = 1u << 12;           ///< descriptor pool size
    std::size_t relay_percent = 10;
    /// Page size classes (16 << c geometric ladder): num_classes=10 is the
    /// paper's 16 B .. 8 KiB. The top class must fit chunk_bytes.
    std::size_t num_classes = 10;
  };

  /// Schema over the tunable fields; `queue`/`chunk_based` are the variant's
  /// registry identity (Ouro-{P,C}-{S,VA,VL}) and not overridable.
  static const core::ConfigSchema<Config>& config_schema();

  Ouroboros(gpu::Device& dev, std::size_t heap_bytes, Config cfg);

  [[nodiscard]] const Config& config() const { return cfg_; }

  [[nodiscard]] const core::AllocatorTraits& traits() const override;
  [[nodiscard]] void* malloc(gpu::ThreadCtx& ctx, std::size_t size) override;
  void free(gpu::ThreadCtx& ctx, void* ptr) override;

  /// Walks every chunk's meta word (and, for the -C variants, its page
  /// bitmap): class tags must name a real size class, free-page counters
  /// must fit the chunk, and counter + claimed pages must never exceed the
  /// chunk's page count. Pages a cancelled lane lost are accounted leakage
  /// (leaked_pages) and pass; an impossible counter or tag fails.
  [[nodiscard]] core::AuditResult audit() override;

  /// Default class count (Config::num_classes overrides per instance).
  static constexpr std::size_t kNumClasses = 10;  // 16 B .. 8 KiB
  /// Bounded page/chunk-queue re-polls after the chunk pool reports
  /// exhaustion. Racing frees (and the splits other lanes just performed)
  /// refill the queues continuously, so a single missed dequeue pass is not
  /// proof of an empty heap; giving up there is what inflated Ouro-P-S
  /// failures to ~33% in the warp-agg churn (EXPERIMENTS.md).
  static constexpr unsigned kExhaustedRedequeues = 32;
  static constexpr std::size_t class_bytes(std::size_t c) {
    return std::size_t{16} << c;
  }
  /// The same geometry as a shared SizeClassMap (request-side lookup).
  static const alloc_core::SizeClassMap& page_classes();

  /// Pages a freed value could not be queued back for (capacity overflow) —
  /// accounted, bounded leakage rather than a blocked free. Only the
  /// standard (-S) queues can leak this way: the virtualized variants
  /// re-virtualize what their queues cannot hold (page-based: an intrusive
  /// per-class spill stack threaded through the free pages themselves;
  /// chunk-based: an exhaustion-time meta scan that rediscovers chunks the
  /// queue failed to advertise), so -VA/-VL report 0 here by contract —
  /// bench_resilience gates CI on it. The counter still moves for
  /// application-level double frees against retired chunks.
  [[nodiscard]] std::uint64_t leaked_pages(gpu::ThreadCtx& ctx) {
    return ctx.atomic_load(leak_counter_);
  }
  /// Host-side (quiescent) read of the same counter, for benches and tests
  /// that diagnose pool exhaustion after the kernels have drained.
  [[nodiscard]] std::uint64_t leaked_pages_host() const {
    return *leak_counter_;
  }

 private:
  struct ChunkMeta {
    std::uint64_t state;       // {class+1 : high 32, free pages : low 32}
    std::uint64_t bitmap[8];   // used pages (chunk-based variants)
  };

  [[nodiscard]] std::size_t pages_per_chunk(std::size_t cls) const {
    return cfg_.chunk_bytes / class_bytes(cls);
  }
  void* malloc_page_based(gpu::ThreadCtx& ctx, std::size_t cls);
  void* malloc_chunk_based(gpu::ThreadCtx& ctx, std::size_t cls);
  void free_page_based(gpu::ThreadCtx& ctx, std::uint32_t chunk,
                       std::size_t off_in_chunk);
  void free_chunk_based(gpu::ThreadCtx& ctx, std::uint32_t chunk,
                        std::size_t off_in_chunk);

  /// True for -VA/-VL: queue overflow must never lose a page.
  [[nodiscard]] bool virtualized() const {
    return cfg_.queue != QueueKind::kStandard;
  }
  /// Intrusive per-class Treiber spill stack for page-based virtualized
  /// variants: a page the queue could not take stores its successor in its
  /// own first 8 bytes. Tagged top word ({aba tag : 32, unit+1 : 32})
  /// makes the pop CAS ABA-safe; a garbage next read from a page that was
  /// popped concurrently is discarded when the CAS fails.
  void spill_push(gpu::ThreadCtx& ctx, std::size_t cls, std::uint32_t unit);
  bool spill_pop(gpu::ThreadCtx& ctx, std::size_t cls, std::uint32_t& unit);
  /// Stage-2 of the chunk-based claim: pin one free page bit of a chunk
  /// whose counter was already debited. Shared by the queue path and the
  /// exhaustion-time scavenger.
  void* claim_page_bit(gpu::ThreadCtx& ctx, std::uint32_t chunk,
                       std::size_t cls);
  /// Exhaustion-time rediscovery scan for chunk-based virtualized
  /// variants: walks the chunk metas for a matching-class chunk with free
  /// pages (one the queue failed to advertise) and claims from it — the
  /// reason an advertise-enqueue failure is not a leak on -VA/-VL.
  void* scavenge_chunk_page(gpu::ThreadCtx& ctx, std::size_t cls);

  Config cfg_;
  core::AllocatorTraits traits_{};
  ChunkPool pool_;
  ChunkMeta* meta_ = nullptr;
  alloc_core::SizeClassMap classes_;  ///< geometric(16, cfg_.num_classes)
  std::vector<std::unique_ptr<OuroQueue>> queues_;  ///< one per class
  std::uint64_t* leak_counter_ = nullptr;
  std::uint64_t* spill_tops_ = nullptr;  ///< [num_classes] tagged stack tops
  alloc_core::LargeRequestRelay relay_;
};

}  // namespace gms::alloc
