#pragma once

#include <memory>

#include "alloc_core/large_relay.h"
#include "allocators/common.h"

namespace gms::alloc {

/// FDGMalloc (Widmer et al., GPGPU-6 2013) — §2.4 / Fig. 3.
///
/// A warp-level allocator: voting determines a leader thread which performs
/// all bookkeeping for the warp's coalesced group, reducing simultaneous
/// memory requests and branch divergence. Each warp owns a WarpHeader with a
/// pointer to the foremost SuperBlock and fixed-size lists of every
/// SuperBlock ever allocated (from the CUDA allocator). A warp request whose
/// total exceeds the maximum SuperBlock size is forwarded to the CUDA
/// allocator wholesale; otherwise the leader bump-allocates lane offsets from
/// the current SuperBlock, starting a fresh one when it runs out.
///
/// There is *no* general free: only all allocations of a warp can be released
/// collectively (warp_free_all), "constraints that do not fit many modern
/// applications". traits() marks it non-general-purpose; the harness excludes
/// it from the general sweeps exactly as the paper did.
class FDGMalloc final : public core::MemoryManager {
 public:
  struct Config {
    std::size_t superblock_bytes = 8192;
    unsigned list_capacity = 30;  ///< SuperBlocks per SuperBlock_List node
    std::size_t max_warps = 1u << 16;  ///< WarpHeader table entries
  };

  /// Schema binding Config to the runtime "{k=v}" layer (fdg_malloc.cpp).
  static const core::ConfigSchema<Config>& config_schema();

  FDGMalloc(gpu::Device& dev, std::size_t heap_bytes, Config cfg);

  [[nodiscard]] const Config& config() const { return cfg_; }
  FDGMalloc(gpu::Device& dev, std::size_t heap_bytes)
      : FDGMalloc(dev, heap_bytes, Config{}) {}

  [[nodiscard]] const core::AllocatorTraits& traits() const override;
  /// Per-thread malloc degenerates to a coalesced group of one lane; it
  /// exists so the conformance tests can exercise the code path, but the
  /// allocator is meant to be driven via warp_malloc.
  [[nodiscard]] void* malloc(gpu::ThreadCtx& ctx, std::size_t size) override;
  void free(gpu::ThreadCtx& ctx, void* ptr) override;

  [[nodiscard]] void* warp_malloc(gpu::ThreadCtx& ctx,
                                  std::size_t size) override;
  void warp_free_all(gpu::ThreadCtx& ctx) override;

 private:
  struct SuperBlockList {
    std::uint32_t total_count;
    std::uint32_t pad;
    SuperBlockList* next;
    void* blocks[];  // list_capacity entries
  };
  struct WarpHeader {
    std::byte* current;       ///< foremost SuperBlock
    std::size_t current_off;  ///< bump offset within it
    SuperBlockList* head;
    SuperBlockList* tail;
  };

  WarpHeader* header_for(gpu::ThreadCtx& ctx);
  bool register_block(gpu::ThreadCtx& ctx, WarpHeader* wh, void* block);

  Config cfg_;
  WarpHeader** warp_table_ = nullptr;  // global_warp_id -> header
  /// FDGMalloc sources *everything* (headers, lists, SuperBlocks) from the
  /// CUDA allocator, so the relay is its entire backing store.
  alloc_core::LargeRequestRelay system_;
};

}  // namespace gms::alloc
