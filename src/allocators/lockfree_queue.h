#pragma once

#include <cstdint>

#include "gpu/thread_ctx.h"

namespace gms::alloc {

/// Bounded, lock-free MPMC FIFO over device memory (Vyukov-style ticket
/// queue: per-slot sequence numbers, CAS-claimed head/tail).
///
/// This is the "fixed-capacity, lock-free FIFO array" XMalloc builds its
/// first- and second-level buffers from (§2.2) and the "standard queue" of
/// Ouroboros (§2.10, Ouro-S). Both sides are non-blocking: try_dequeue
/// reports empty instead of waiting, which is what lets the allocators fall
/// through to their slow paths instead of spinning on starved queues.
///
/// The structure is a *view*: construct it over arena memory laid out by
/// `layout_words` and initialised once via `init_host`.
class BoundedTicketQueue {
 public:
  /// u64 words needed for a queue of `capacity` items: head, tail,
  /// capacity slots of {sequence, value}.
  static constexpr std::size_t layout_words(std::size_t capacity) {
    return 2 + 2 * capacity;
  }

  /// An unattached queue; assign a storage-bound instance before use.
  BoundedTicketQueue() = default;

  BoundedTicketQueue(std::uint64_t* storage, std::size_t capacity)
      : head_(storage), tail_(storage + 1), seq_(storage + 2),
        val_(storage + 2 + capacity), capacity_(capacity) {}

  /// Host-side one-time initialisation (slot i's sequence starts at i).
  void init_host() {
    *head_ = 0;
    *tail_ = 0;
    for (std::size_t i = 0; i < capacity_; ++i) seq_[i] = i;
  }

  /// Host-side pre-population before the queue is shared with lanes.
  void push_host(std::uint64_t value) {
    const std::uint64_t pos = (*tail_)++;
    val_[pos % capacity_] = value;
    seq_[pos % capacity_] = pos + 1;
  }

  /// @return false when the queue is full.
  bool try_enqueue(gpu::ThreadCtx& ctx, std::uint64_t value) {
    for (;;) {
      const std::uint64_t pos = ctx.atomic_load(tail_);
      std::uint64_t* seq = &seq_[pos % capacity_];
      const std::uint64_t s = ctx.atomic_load(seq);
      if (s == pos) {
        if (ctx.atomic_cas(tail_, pos, pos + 1) == pos) {
          ctx.atomic_store(&val_[pos % capacity_], value);
          ctx.atomic_store(seq, pos + 1);
          return true;
        }
      } else if (s < pos) {
        return false;  // slot still holds an unconsumed value: full
      }
      ctx.backoff();
    }
  }

  /// @return false when the queue is empty (or an in-flight enqueue has not
  /// published yet — callers treat that as empty and take their slow path).
  bool try_dequeue(gpu::ThreadCtx& ctx, std::uint64_t& value_out) {
    for (;;) {
      const std::uint64_t pos = ctx.atomic_load(head_);
      std::uint64_t* seq = &seq_[pos % capacity_];
      const std::uint64_t s = ctx.atomic_load(seq);
      if (s == pos + 1) {
        if (ctx.atomic_cas(head_, pos, pos + 1) == pos) {
          value_out = ctx.atomic_load(&val_[pos % capacity_]);
          ctx.atomic_store(seq, pos + capacity_);
          return true;
        }
      } else if (s <= pos) {
        return false;
      }
      ctx.backoff();
    }
  }

  /// Approximate occupancy (exact when quiescent).
  [[nodiscard]] std::uint64_t size_approx(gpu::ThreadCtx& ctx) const {
    const auto h = ctx.atomic_load(head_);
    const auto t = ctx.atomic_load(tail_);
    return t > h ? t - h : 0;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  std::uint64_t* head_ = nullptr;
  std::uint64_t* tail_ = nullptr;
  std::uint64_t* seq_ = nullptr;
  std::uint64_t* val_ = nullptr;
  std::size_t capacity_ = 0;
};

}  // namespace gms::alloc
