#pragma once

#include <cstdint>

#include "gpu/thread_ctx.h"

namespace gms::alloc {

/// Bulk semaphore — the throughput-oriented synchronisation primitive of
/// Gelado & Garland's BulkAllocator (§2.9). The crucial behaviour: when the
/// count is short, exactly one waiter becomes the *refiller* and acquires a
/// whole batch of resources upstream ("preemptive batch allocation, reducing
/// wait times for the allocating threads"); everybody else keeps spinning on
/// the counter instead of hammering the slow path.
///
/// The state word packs {refill-in-flight : bit 63, count : low 63}.
class BulkSemaphore {
 public:
  explicit BulkSemaphore(std::uint64_t* word) : word_(word) {}

  /// Non-blocking P(n). @return true when n resources were taken.
  bool try_acquire(gpu::ThreadCtx& ctx, std::uint64_t n) {
    for (;;) {
      const std::uint64_t seen = ctx.atomic_load(word_);
      if ((seen & kCountMask) < n) return false;
      if (ctx.atomic_cas(word_, seen, seen - n) == seen) return true;
      ctx.backoff();
    }
  }

  /// V(n).
  void release(gpu::ThreadCtx& ctx, std::uint64_t n) {
    ctx.atomic_add(word_, n);
  }

  /// P(n) with bulk refill: when short, one thread wins the refill flag and
  /// must call `refill()` — which returns how many resources it added (its
  /// own n included; 0 = upstream exhausted). Other waiters spin.
  /// @return true when n resources were obtained.
  template <typename RefillFn>
  bool acquire_or_refill(gpu::ThreadCtx& ctx, std::uint64_t n,
                         RefillFn&& refill) {
    for (unsigned spins = 0;; ++spins) {
      const std::uint64_t seen = ctx.atomic_load(word_);
      if ((seen & kCountMask) >= n) {
        if (ctx.atomic_cas(word_, seen, seen - n) == seen) return true;
        ctx.backoff();
        continue;
      }
      if ((seen & kRefillFlag) == 0) {
        // Try to become the refiller.
        if (ctx.atomic_cas(word_, seen, seen | kRefillFlag) == seen) {
          const std::uint64_t added = refill();
          if (added >= n) {
            // Keep our n, publish the surplus, clear the flag.
            ctx.atomic_add(word_, added - n);
            ctx.atomic_and(word_, ~kRefillFlag);
            return true;
          }
          ctx.atomic_add(word_, added);
          ctx.atomic_and(word_, ~kRefillFlag);
          return false;  // upstream exhausted
        }
        continue;
      }
      // A refill is in flight; wait for its batch instead of duplicating it.
      ctx.backoff();
      if (spins > kMaxSpins) return false;
    }
  }

  [[nodiscard]] std::uint64_t count(gpu::ThreadCtx& ctx) const {
    return ctx.atomic_load(word_) & kCountMask;
  }

 private:
  static constexpr std::uint64_t kRefillFlag = 1ull << 63;
  static constexpr std::uint64_t kCountMask = kRefillFlag - 1;
  static constexpr unsigned kMaxSpins = 1u << 16;

  std::uint64_t* word_;
};

}  // namespace gms::alloc
