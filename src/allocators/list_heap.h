#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <string>

#include "gpu/thread_ctx.h"

namespace gms::alloc {

/// First-fit heap over a linked list of memory blocks, as XMalloc's large
/// path uses it (§2.2, Fig. 1): the heap starts as one giant free
/// Memoryblock; allocation traverses the list from the start — "relatively
/// slow, as the list of memory blocks has to be traversed" — claims a free
/// block with CAS, splits off the remainder, and free() merges forward with
/// the next free neighbour.
///
/// Links live inline at each block's first unit; the {start, allocated} flag
/// pairs live in a side bitmap so a stale traversal can never claim an
/// absorbed block (same safety scheme as RegEffAlloc, where it is justified
/// in detail).
class ListHeap {
 public:
  static constexpr std::uint32_t kUnit = 16;
  /// malloc() walk-pass budgets before reporting exhaustion. A single pass
  /// running off the end of the list is not proof of OOM, so passes are
  /// classified and budgeted separately:
  ///  - a pass that saw a *free* fitting block lost a claim race — not
  ///    evidence of exhaustion at all, both counters reset;
  ///  - a pass that saw a fitting block *held allocated* is inconclusive:
  ///    under a malloc storm the big tail block is claimed nearly
  ///    continuously by a rotating series of winners mid-split, and a walker
  ///    can sample dozens of passes without ever catching it free (observed:
  ///    1024 replay lanes OOM-ing against a 97%-free heap);
  ///  - only a pass that saw *no* fitting block, free or held, is real
  ///    evidence, and a few such passes suffice.
  static constexpr unsigned kMaxFruitlessPasses = 8;
  static constexpr unsigned kMaxContendedPasses = 256;

  /// Side-flag words required for `units` 16 B units.
  static constexpr std::size_t flag_words(std::size_t units) {
    return units / 32 + 1;
  }

  ListHeap() = default;

  /// Host-side setup over arena memory: one free block spanning everything.
  /// `min_split_units` is the smallest usable remainder worth splitting off
  /// a claimed block (in 16 B units); smaller leftovers stay attached as
  /// internal fragmentation. 4 reproduces the historical behaviour.
  void init_host(std::byte* pool, std::uint32_t units,
                 std::uint64_t* flag_storage,
                 std::uint32_t min_split_units = 4) {
    pool_ = pool;
    units_ = units;
    flags_ = flag_storage;
    min_split_units_ = min_split_units;
    flags_[0] |= start_bit(0);
    *link(0) = units;
  }

  /// Allocates `bytes`; returns nullptr when no block fits.
  void* malloc(gpu::ThreadCtx& ctx, std::size_t bytes) {
    // Reject before the 32-bit unit math: a request beyond the whole pool can
    // never fit, and casting its unit count would otherwise wrap (a
    // SIZE_MAX/2 request must not truncate into a tiny "successful" one).
    if (bytes > std::size_t{units_} * kUnit) return nullptr;
    const auto need = static_cast<std::uint32_t>((bytes + kUnit - 1) / kUnit);
    std::uint32_t off = 0;
    unsigned fruitless_passes = 0;
    unsigned contended_passes = 0;
    bool saw_free_fit = false;
    bool saw_held_fit = false;
    for (std::size_t step = 0; step < 2 * std::size_t{units_} + 64; ++step) {
      if (off >= units_) {
        // End of one pass over the list; judge it per the class comment.
        if (saw_free_fit) {
          fruitless_passes = 0;
          contended_passes = 0;
        } else if (saw_held_fit) {
          if (++contended_passes >= kMaxContendedPasses) return nullptr;
          ctx.backoff();  // park so the mid-split holder gets to publish
        } else {
          if (++fruitless_passes >= kMaxFruitlessPasses) return nullptr;
          ctx.backoff();
        }
        saw_free_fit = false;
        saw_held_fit = false;
        off = 0;
        continue;
      }
      if (!is_start(ctx, off)) {
        off = 0;  // stale: re-anchor at the always-valid first block
        continue;
      }
      const std::uint32_t next = ctx.atomic_load(link(off));
      if (next <= off || next > units_) {
        off = 0;
        continue;
      }
      if (next - off - 1 >= need && is_allocated(ctx, off)) {
        // A fitting block, but held: either a completed allocation or a
        // racing lane a few stores away from publishing the split remainder.
        saw_held_fit = true;
      } else if (next - off - 1 >= need) {
        // A free block that fits. Even if the claim below loses a race, this
        // pass was not fruitless — the space existed, some lane got it.
        saw_free_fit = true;
        if (try_claim(ctx, off)) {
          const std::uint32_t owned_next = ctx.atomic_load(link(off));
          const std::uint32_t avail = owned_next - off - 1;
          if (avail < need) {
            release(ctx, off);
          } else {
            if (avail - need >= min_split_units_) {  // split usable remainder
              const std::uint32_t split = off + need + 1;
              ctx.atomic_store(link(split), owned_next);
              ctx.atomic_or(&flags_[split / 32], start_bit(split));
              ctx.atomic_store(link(off), split);
            }
            return pool_ + std::size_t{off} * kUnit + kUnit;
          }
        }
      }
      off = next;
    }
    return nullptr;
  }

  void free(gpu::ThreadCtx& ctx, void* ptr) {
    const std::size_t byte_off = static_cast<std::byte*>(ptr) - pool_;
    const auto unit = static_cast<std::uint32_t>(byte_off / kUnit) - 1;
    assert(is_start(ctx, unit));
    const std::uint32_t next = ctx.atomic_load(link(unit));
    if (next < units_ && is_start(ctx, next) && !is_allocated(ctx, next) &&
        try_claim(ctx, next)) {
      // Merge with the (free) successor we just locked.
      ctx.atomic_store(link(unit), ctx.atomic_load(link(next)));
      ctx.atomic_and(&flags_[next / 32], ~(start_bit(next) | alloc_bit(next)));
    }
    release(ctx, unit);
  }

  [[nodiscard]] bool contains(const void* p) const {
    auto* b = static_cast<const std::byte*>(p);
    return b >= pool_ && b < pool_ + std::size_t{units_} * kUnit;
  }

  /// Host-side integrity walk for MemoryManager::audit() (quiescent only):
  /// follows the block list from unit 0 and checks the invariants that hold
  /// even after a cancelled kernel — every reached block carries its start
  /// bit, links are strictly increasing, and the walk terminates exactly at
  /// `units_`. A block claimed by a reaped lane merely looks allocated
  /// (bounded leakage, not a failure); a broken link or missing start bit is
  /// corruption. Returns blocks walked; sets *why on failure.
  [[nodiscard]] bool audit_host(std::uint64_t& blocks_walked,
                                std::string* why) const {
    blocks_walked = 0;
    if (pool_ == nullptr || units_ == 0) return true;  // never initialised
    std::uint32_t off = 0;
    // units_+1 blocks can never exist: every block spans >= 1 unit + link.
    for (std::size_t step = 0; step <= units_; ++step) {
      if (off == units_) return true;  // clean end of heap
      const std::uint64_t flags = std::atomic_ref<std::uint64_t>(
                                      flags_[off / 32])
                                      .load(std::memory_order_acquire);
      if ((flags & start_bit(off)) == 0) {
        if (why != nullptr) {
          *why = "list-heap: unit " + std::to_string(off) +
                 " reached by a link but has no start bit";
        }
        return false;
      }
      const std::uint32_t next =
          std::atomic_ref<std::uint32_t>(
              *reinterpret_cast<std::uint32_t*>(
                  pool_ + std::size_t{off} * kUnit))
              .load(std::memory_order_acquire);
      if (next <= off || next > units_) {
        if (why != nullptr) {
          *why = "list-heap: block at unit " + std::to_string(off) +
                 " links to " + std::to_string(next) + " (of " +
                 std::to_string(units_) + " units)";
        }
        return false;
      }
      ++blocks_walked;
      off = next;
    }
    if (why != nullptr) *why = "list-heap: block list does not terminate";
    return false;  // more blocks than units: a cycle through stale flags
  }

  /// Number of blocks on the list (test/diagnostic, quiescent only).
  [[nodiscard]] std::size_t block_count(gpu::ThreadCtx& ctx) {
    std::size_t n = 0;
    for (std::uint32_t off = 0; off < units_;) {
      if (!is_start(ctx, off)) break;
      ++n;
      const std::uint32_t next = ctx.atomic_load(link(off));
      if (next <= off) break;
      off = next;
    }
    return n;
  }

 private:
  static constexpr std::uint64_t start_bit(std::uint32_t unit) {
    return 1ull << ((unit % 32) * 2);
  }
  static constexpr std::uint64_t alloc_bit(std::uint32_t unit) {
    return 2ull << ((unit % 32) * 2);
  }

  [[nodiscard]] std::uint32_t* link(std::uint32_t unit) {
    return reinterpret_cast<std::uint32_t*>(pool_ + std::size_t{unit} * kUnit);
  }
  bool is_start(gpu::ThreadCtx& ctx, std::uint32_t unit) {
    return (ctx.atomic_load(&flags_[unit / 32]) & start_bit(unit)) != 0;
  }
  bool is_allocated(gpu::ThreadCtx& ctx, std::uint32_t unit) {
    return (ctx.atomic_load(&flags_[unit / 32]) & alloc_bit(unit)) != 0;
  }
  bool try_claim(gpu::ThreadCtx& ctx, std::uint32_t unit) {
    std::uint64_t* word = &flags_[unit / 32];
    for (;;) {
      const std::uint64_t seen = ctx.atomic_load(word);
      if ((seen & start_bit(unit)) == 0) return false;
      if ((seen & alloc_bit(unit)) != 0) return false;
      if (ctx.atomic_cas(word, seen, seen | alloc_bit(unit)) == seen) {
        return true;
      }
      ctx.backoff();
    }
  }
  void release(gpu::ThreadCtx& ctx, std::uint32_t unit) {
    ctx.atomic_and(&flags_[unit / 32], ~alloc_bit(unit));
  }

  std::byte* pool_ = nullptr;
  std::uint32_t units_ = 0;
  std::uint64_t* flags_ = nullptr;
  std::uint32_t min_split_units_ = 4;
};

}  // namespace gms::alloc
