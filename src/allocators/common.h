#pragma once

#include <cassert>
#include <cstdint>

#include "core/memory_manager.h"
#include "core/utils.h"
#include "gpu/device.h"
#include "gpu/thread_ctx.h"

namespace gms::alloc {

/// Device-side test-and-test-and-set spinlock living on a 32-bit word in the
/// arena. Only the deliberately serialized CUDA-Allocator stand-in uses it;
/// the surveyed research allocators stay lock-free as their papers require.
class DeviceSpinLock {
 public:
  explicit DeviceSpinLock(std::uint32_t* word) : word_(word) {}

  void lock(gpu::ThreadCtx& ctx) {
    for (;;) {
      if (ctx.atomic_load(word_) == 0 && ctx.atomic_exch(word_, 1u) == 0) {
        // Ownership note feeds the launch watchdog's timeout report.
        ctx.note_lock_acquired(word_);
        return;
      }
      ctx.backoff();
    }
  }
  void unlock(gpu::ThreadCtx& ctx) {
    ctx.note_lock_released(word_);
    ctx.atomic_store(word_, 0u);
  }

 private:
  std::uint32_t* word_;
};

/// RAII guard for DeviceSpinLock (CP.20: never plain lock/unlock).
class DeviceLockGuard {
 public:
  DeviceLockGuard(DeviceSpinLock lock, gpu::ThreadCtx& ctx)
      : lock_(lock), ctx_(ctx) {
    lock_.lock(ctx_);
  }
  ~DeviceLockGuard() { lock_.unlock(ctx_); }
  DeviceLockGuard(const DeviceLockGuard&) = delete;
  DeviceLockGuard& operator=(const DeviceLockGuard&) = delete;

 private:
  DeviceSpinLock lock_;
  gpu::ThreadCtx& ctx_;
};

/// Host-side sequential carver used in constructors to lay out an allocator's
/// metadata and data regions inside its slice of the arena.
class HeapCarver {
 public:
  HeapCarver(gpu::Device& dev, std::size_t heap_bytes)
      : base_(dev.arena().data()), end_(heap_bytes) {}

  /// Carves a sub-range (used when one manager nests another, e.g. Halloc's
  /// split with the CUDA-Allocator stand-in for > 3 KiB requests).
  HeapCarver(std::byte* base, std::size_t bytes) : base_(base), end_(bytes) {}

  template <typename T>
  T* take(std::size_t count, std::size_t align = alignof(T)) {
    off_ = core::round_up(off_, std::max<std::size_t>(align, alignof(T)));
    auto* p = reinterpret_cast<T*>(base_ + off_);
    off_ += sizeof(T) * count;
    assert(off_ <= end_ && "allocator metadata exceeds heap");
    return p;
  }

  /// Remaining bytes after metadata, aligned to `align`.
  std::byte* take_rest(std::size_t& bytes_out, std::size_t align = 16) {
    off_ = core::round_up(off_, align);
    bytes_out = end_ - off_;
    auto* p = base_ + off_;
    off_ = end_;
    return p;
  }

  [[nodiscard]] std::size_t used() const { return off_; }

 private:
  std::byte* base_;
  std::size_t end_;
  std::size_t off_ = 0;
};

}  // namespace gms::alloc
