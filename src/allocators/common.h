#pragma once

#include <cassert>
#include <cstdint>

#include "core/alloc_config.h"
#include "core/memory_manager.h"
#include "core/utils.h"
#include "gpu/device.h"
#include "gpu/thread_ctx.h"

namespace gms::alloc {

/// Device-side test-and-test-and-set spinlock living on a 32-bit word in the
/// arena. Only the deliberately serialized CUDA-Allocator stand-in uses it;
/// the surveyed research allocators stay lock-free as their papers require.
class DeviceSpinLock {
 public:
  explicit DeviceSpinLock(std::uint32_t* word) : word_(word) {}

  void lock(gpu::ThreadCtx& ctx) {
    for (;;) {
      if (ctx.atomic_load(word_) == 0 && ctx.atomic_exch(word_, 1u) == 0) {
        // Ownership note feeds the launch watchdog's timeout report.
        ctx.note_lock_acquired(word_);
        return;
      }
      ctx.backoff();
    }
  }
  void unlock(gpu::ThreadCtx& ctx) {
    ctx.note_lock_released(word_);
    ctx.atomic_store(word_, 0u);
  }

 private:
  std::uint32_t* word_;
};

/// RAII guard for DeviceSpinLock (CP.20: never plain lock/unlock).
class DeviceLockGuard {
 public:
  DeviceLockGuard(DeviceSpinLock lock, gpu::ThreadCtx& ctx)
      : lock_(lock), ctx_(ctx) {
    lock_.lock(ctx_);
  }
  ~DeviceLockGuard() { lock_.unlock(ctx_); }
  DeviceLockGuard(const DeviceLockGuard&) = delete;
  DeviceLockGuard& operator=(const DeviceLockGuard&) = delete;

 private:
  DeviceSpinLock lock_;
  gpu::ThreadCtx& ctx_;
};

}  // namespace gms::alloc
