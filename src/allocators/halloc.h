#pragma once

#include <memory>
#include <string>

#include "alloc_core/large_relay.h"
#include "alloc_core/size_class_map.h"
#include "allocators/common.h"
#include "allocators/lockfree_queue.h"

namespace gms::alloc {

/// Halloc (Adinetz & Pleiter, GTC 2014) — §2.7 / Fig. 5.
///
/// Initialisation carves the memory into slabs that are assigned to a block
/// size at runtime. The core is a bitmap heap, one bit per block, traversed
/// with a hash function that visits all blocks — "fast and scalable as long
/// as < 85 % of the blocks are allocated". All allocation-state counters are
/// updated with warp-aggregated atomics (a leader increments for the whole
/// group: up to 32x fewer atomics). Slabs are classified free / sparse
/// (< 2 %) / busy (> 60 %); busy slabs are avoided during head search, and
/// head replacement starts early (fill level > 83.5 %). Blocks carry no
/// headers — a pointer's slab and block index are pure address arithmetic.
/// Allocations above 3 KiB are relayed to the CUDA allocator, which receives
/// its own section of the memory.
class Halloc final : public core::MemoryManager {
 public:
  struct Config {
    std::size_t slab_bytes = 1u << 21;  // 2 MiB (paper: 2-8 MiB)
    std::size_t relay_percent = 33;     // heap share of the CUDA section
    double head_replace_fill = 0.835;
    double sparse_fill = 0.02;
    double busy_fill = 0.60;
    /// Block size ladder (colon-separated, ascending). The default is the
    /// paper's 16 B ... 3 KiB mixed table; the top rung becomes the direct
    /// service limit (larger requests relay to the CUDA section).
    std::string ladder =
        "16:24:32:48:64:96:128:192:256:384:512:768:1024:1536:2048:3072";
  };

  /// Schema binding Config to the runtime "{k=v}" layer (halloc.cpp).
  static const core::ConfigSchema<Config>& config_schema();

  Halloc(gpu::Device& dev, std::size_t heap_bytes, Config cfg);
  Halloc(gpu::Device& dev, std::size_t heap_bytes)
      : Halloc(dev, heap_bytes, Config{}) {}

  [[nodiscard]] const Config& config() const { return cfg_; }

  [[nodiscard]] const core::AllocatorTraits& traits() const override;
  [[nodiscard]] void* malloc(gpu::ThreadCtx& ctx, std::size_t size) override;
  void free(gpu::ThreadCtx& ctx, void* ptr) override;

  /// Default block size classes: halloc's 16 B ... 3 KiB mixed ladder.
  /// Instances route through their configured `classes_` — this stays for
  /// callers needing the paper geometry without an instance.
  static const alloc_core::SizeClassMap& block_classes();

  /// White-box for tests.
  [[nodiscard]] std::uint32_t slab_count() const { return num_slabs_; }
  [[nodiscard]] std::uint32_t slab_class(gpu::ThreadCtx& ctx,
                                         std::uint32_t slab);
  [[nodiscard]] const alloc_core::LargeRequestRelay& relay() const {
    return relay_;
  }

 private:
  // Slab state word: {class+1 : high 32 (0 = unassigned), used count : low}.
  static std::uint64_t make_state(std::uint32_t cls_plus1,
                                  std::uint32_t count) {
    return (static_cast<std::uint64_t>(cls_plus1) << 32) | count;
  }
  static std::uint32_t state_cls(std::uint64_t s) {
    return static_cast<std::uint32_t>(s >> 32);
  }
  static std::uint32_t state_count(std::uint64_t s) {
    return static_cast<std::uint32_t>(s);
  }

  [[nodiscard]] std::uint32_t capacity(std::uint32_t cls) const {
    return static_cast<std::uint32_t>(cfg_.slab_bytes /
                                      classes_.class_bytes(cls));
  }
  [[nodiscard]] std::uint64_t* slab_bitmap(std::uint32_t slab) {
    return bitmaps_ + std::size_t{slab} * bitmap_words_;
  }

  /// Claims one free bit in `slab` via the hash traversal; the caller must
  /// hold a count reservation. Returns the block index.
  std::uint32_t claim_block(gpu::ThreadCtx& ctx, std::uint32_t slab,
                            std::uint32_t cls);

  /// Installs a usable head slab for `cls` (free queue, then sparse/partial
  /// scan, finally busy slabs) and returns it; kInvalid when out of slabs.
  std::uint32_t replace_head(gpu::ThreadCtx& ctx, std::uint32_t cls,
                             std::uint32_t stale_head);

  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;

  Config cfg_;
  alloc_core::SizeClassMap classes_;  ///< parsed from cfg_.ladder
  core::AllocatorTraits traits_;      ///< kTraits with the ladder's max rung
  std::uint32_t num_slabs_ = 0;
  std::size_t bitmap_words_ = 0;

  std::uint64_t* slab_state_ = nullptr;
  std::uint64_t* bitmaps_ = nullptr;
  std::uint32_t* heads_ = nullptr;  // per class
  BoundedTicketQueue free_slabs_;
  std::byte* slab_base_ = nullptr;
  alloc_core::LargeRequestRelay relay_;
};

}  // namespace gms::alloc
