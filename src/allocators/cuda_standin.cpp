#include "allocators/cuda_standin.h"

#include <cstring>

#include "alloc_core/sub_arena.h"

namespace gms::alloc {

namespace {
constexpr core::AllocatorTraits kTraits{
    .name = "CUDA",
    .family = "CUDA-Allocator",
    .paper_ref = "[13], NVIDIA Toolkit 2010",
    .year = 2010,
    .general_purpose = true,
    .supports_free = true,
    .individual_free = true,
    .resizable = false,  // "increasing memory requires destroying the context"
    .its_safe = true,
    .stable = true,
    .malloc_state_bytes = 56,
    .free_state_bytes = 40,
};

// Unit sizes and heap shares of the three sub-heaps. The 512 B / 4 KiB
// boundary at 2048 B payloads reproduces the paper's pre-2048 B split.
constexpr std::size_t kUnits[3] = {128, 512, 4096};
constexpr std::size_t kShares[3] = {30, 15, 55};  // percent of the heap
}  // namespace

CudaStandin::CudaStandin(gpu::Device& dev, std::size_t heap_bytes)
    : CudaStandin(dev.arena().data(), heap_bytes) {}

bool CudaStandin::contains(const void* p) const {
  for (const Region& reg : regions_) {
    auto* b = static_cast<const std::byte*>(p);
    if (b >= reg.data && b < reg.data + reg.num_units * reg.unit) return true;
  }
  return false;
}

CudaStandin::CudaStandin(std::byte* base, std::size_t heap_bytes) {
  core::Stopwatch timer;
  alloc_core::SubArena carver(base, heap_bytes);
  static constexpr std::string_view kRegionLabels[3] = {"small-region",
                                                        "medium-region",
                                                        "large-region"};
  for (unsigned r = 0; r < 3; ++r) {
    const std::size_t bytes = heap_bytes * kShares[r] / 100;
    Region& reg = regions_[r];
    reg.unit = kUnits[r];
    reg.num_units = bytes / reg.unit;
    reg.lock = carver.take<std::uint32_t>(1);
    reg.hint = carver.take<std::uint64_t>(1);
    reg.bitmap = carver.take<std::uint64_t>((reg.num_units + 63) / 64);
    if (r == 2) {
      reg.side_headers = carver.take<std::uint64_t>(reg.num_units);
      reg.num_units -= reg.num_units / 512 + 1;  // give the table its space
    }
    // Trim so metadata + data fit the share (the carver zero-fills via the
    // arena's clear; only the data pointer is still needed).
    reg.data = carver.take<std::byte>(reg.num_units * reg.unit, 128,
                                      kRegionLabels[r]);
  }
  init_ms_ = timer.elapsed_ms();
}

const core::AllocatorTraits& CudaStandin::traits() const { return kTraits; }

unsigned CudaStandin::region_for(std::size_t payload) const {
  const std::size_t total = payload + sizeof(Header);
  if (total <= 512) return 0;
  if (total < 2048) return 1;
  return 2;
}

std::size_t CudaStandin::Region::claim(gpu::ThreadCtx& ctx, std::size_t k) {
  DeviceLockGuard guard(DeviceSpinLock{lock}, ctx);
  const std::size_t start =
      static_cast<std::size_t>(ctx.atomic_load(hint)) % num_units;
  std::size_t run = 0;
  std::size_t run_start = 0;
  std::uint64_t word = 0;
  std::size_t word_idx = ~std::size_t{0};
  // First-fit from the rotating hint, wrapping once over the region. One
  // device load per bitmap word probed: the scan length IS this manager's
  // fill-dependent cost, and routing it through the instrumented accessors
  // (like every other manager's search loop) makes it visible to counters.
  for (std::size_t step = 0; step < num_units + k; ++step) {
    const std::size_t i = (start + step) % num_units;
    if (i == 0 || step == 0) run = 0;  // runs must not wrap the region end
    if (run == 0) run_start = i;
    if (i / 64 != word_idx) {
      word_idx = i / 64;
      word = ctx.atomic_load(&bitmap[word_idx]);
    }
    const bool used = (word >> (i % 64)) & 1ull;
    run = used ? 0 : run + 1;
    if (run == k) {
      flip(ctx, run_start, k, /*set=*/true);
      ctx.atomic_store(hint, static_cast<std::uint64_t>(run_start + k));
      return run_start;
    }
  }
  return ~std::size_t{0};
}

void CudaStandin::Region::flip(gpu::ThreadCtx& ctx, std::size_t first_unit,
                               std::size_t k, bool set) {
  for (std::size_t u = first_unit; u < first_unit + k;) {
    const std::size_t w = u / 64;
    std::uint64_t mask = 0;
    for (; u < first_unit + k && u / 64 == w; ++u) mask |= 1ull << (u % 64);
    // Under the region lock, so plain read + instrumented store suffices.
    ctx.atomic_store(&bitmap[w], set ? bitmap[w] | mask : bitmap[w] & ~mask);
  }
}

void CudaStandin::Region::release(gpu::ThreadCtx& ctx, std::size_t first_unit,
                                  std::size_t k) {
  flip(ctx, first_unit, k, /*set=*/false);
}

void* CudaStandin::malloc(gpu::ThreadCtx& ctx, std::size_t size) {
  if (size == 0) size = 1;
  const unsigned r = region_for(size);
  Region& reg = regions_[r];
  const std::size_t overhead = reg.side_headers ? 0 : sizeof(Header);
  const std::size_t k = (size + overhead + reg.unit - 1) / reg.unit;
  if (k > reg.num_units) return nullptr;
  const std::size_t first = reg.claim(ctx, k);
  if (first == ~std::size_t{0}) return nullptr;
  if (reg.side_headers != nullptr) {
    ctx.atomic_store(&reg.side_headers[first],
                     (std::uint64_t{kMagic} << 32) | k);
    return reg.data + first * reg.unit;
  }
  auto* header = reinterpret_cast<Header*>(reg.data + first * reg.unit);
  header->magic = kMagic;
  header->region = r;
  header->first_unit = first;
  header->unit_count = k;
  return header + 1;
}

void CudaStandin::free(gpu::ThreadCtx& ctx, void* ptr) {
  if (ptr == nullptr) return;
  // Large-region pointers are unit-aligned inside region 2's data range.
  Region& large = regions_[2];
  auto* p = static_cast<std::byte*>(ptr);
  if (p >= large.data && p < large.data + large.num_units * large.unit) {
    const std::size_t first =
        static_cast<std::size_t>(p - large.data) / large.unit;
    const std::uint64_t side = ctx.atomic_load(&large.side_headers[first]);
    assert((side >> 32) == kMagic && "free of a foreign/corrupt pointer");
    ctx.atomic_store(&large.side_headers[first], std::uint64_t{0});
    DeviceLockGuard guard(DeviceSpinLock{large.lock}, ctx);
    large.release(ctx, first, static_cast<std::size_t>(side & 0xFFFFFFFFu));
    return;
  }
  auto* header = static_cast<Header*>(ptr) - 1;
  assert(header->magic == kMagic && "free of a foreign/corrupt pointer");
  Region& reg = regions_[header->region];
  header->magic = 0;
  DeviceLockGuard guard(DeviceSpinLock{reg.lock}, ctx);
  reg.release(ctx, header->first_unit, header->unit_count);
}

}  // namespace gms::alloc
