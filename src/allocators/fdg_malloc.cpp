#include "allocators/fdg_malloc.h"

#include "alloc_core/size_class_map.h"
#include "alloc_core/sub_arena.h"

namespace gms::alloc {

namespace {
constexpr core::AllocatorTraits kTraits{
    .name = "FDGMalloc",
    .family = "FDGMalloc",
    .paper_ref = "[20], GPGPU-6 2013",
    .year = 2013,
    .general_purpose = false,  // warp-level only, no individual free
    .warp_level_only = true,
    .supports_free = true,    // collectively, per warp
    .individual_free = false,
    .bulk_free_capable = true,  // warp_free_all sweeps the warp's whole heap
    .max_direct_size = 8192,  // warp totals beyond one SuperBlock relay
    .relays_large_to_system = true,
    .its_safe = false,
    .stable = false,  // paper: "crashes in most test scenarios"
    .malloc_state_bytes = 36,
    .free_state_bytes = 16,
};
}  // namespace

const core::ConfigSchema<FDGMalloc::Config>& FDGMalloc::config_schema() {
  static const auto schema = [] {
    core::ConfigSchema<Config> s;
    s.u64("superblock_bytes", &Config::superblock_bytes, 1024,
          std::size_t{1} << 20, core::Pow2::kYes, {4096, 8192, 16384, 32768})
        .u64("list_capacity", &Config::list_capacity, 4, 1024, core::Pow2::kNo,
             {15, 30, 62})
        .u64("max_warps", &Config::max_warps, 1u << 10, 1u << 20,
             core::Pow2::kYes, {1u << 14, 1u << 16, 1u << 18});
    return s;
  }();
  return schema;
}

FDGMalloc::FDGMalloc(gpu::Device& dev, std::size_t heap_bytes, Config cfg)
    : cfg_(cfg) {
  core::Stopwatch timer;
  alloc_core::SubArena carver(dev, heap_bytes);
  warp_table_ = carver.take<WarpHeader*>(cfg_.max_warps, alignof(WarpHeader*),
                                         "warp-table");
  for (std::size_t w = 0; w < cfg_.max_warps; ++w) warp_table_[w] = nullptr;
  std::size_t rest = 0;
  auto* base = carver.take_rest(rest, 16, "cuda-relay");
  // FDGMalloc sources WarpHeaders, lists and SuperBlocks from the CUDA
  // allocator (Fig. 3); the relay owns the remaining heap.
  system_.engage(base, rest);
  init_ms_ = timer.elapsed_ms();
}

const core::AllocatorTraits& FDGMalloc::traits() const { return kTraits; }

FDGMalloc::WarpHeader* FDGMalloc::header_for(gpu::ThreadCtx& ctx) {
  const std::size_t slot = ctx.global_warp_id() % cfg_.max_warps;
  auto* wh = reinterpret_cast<WarpHeader*>(
      ctx.atomic_load(reinterpret_cast<std::uintptr_t*>(&warp_table_[slot])));
  if (wh != nullptr) return wh;
  wh = static_cast<WarpHeader*>(system_.malloc(ctx, sizeof(WarpHeader)));
  if (wh == nullptr) return nullptr;
  wh->current = nullptr;
  wh->current_off = 0;
  wh->head = nullptr;
  wh->tail = nullptr;
  // Only the group leader calls header_for, so a plain publish suffices; the
  // slot is still CAS-guarded against a stale same-slot warp id collision.
  if (ctx.atomic_cas(reinterpret_cast<std::uintptr_t*>(&warp_table_[slot]),
                     std::uintptr_t{0}, reinterpret_cast<std::uintptr_t>(wh)) !=
      0) {
    system_.free(ctx, wh);
    return reinterpret_cast<WarpHeader*>(
        ctx.atomic_load(reinterpret_cast<std::uintptr_t*>(&warp_table_[slot])));
  }
  return wh;
}

bool FDGMalloc::register_block(gpu::ThreadCtx& ctx, WarpHeader* wh,
                               void* block) {
  SuperBlockList* list = wh->tail;
  if (list == nullptr || list->total_count >= cfg_.list_capacity) {
    // "These lists are of fixed size and are replaced once full."
    auto* fresh = static_cast<SuperBlockList*>(system_.malloc(
        ctx, sizeof(SuperBlockList) + cfg_.list_capacity * sizeof(void*)));
    if (fresh == nullptr) return false;
    fresh->total_count = 0;
    fresh->next = nullptr;
    if (list != nullptr) {
      list->next = fresh;
    } else {
      wh->head = fresh;
    }
    wh->tail = fresh;
    list = fresh;
  }
  list->blocks[list->total_count++] = block;
  return true;
}

void* FDGMalloc::warp_malloc(gpu::ThreadCtx& ctx, std::size_t size) {
  // Voting determines a leader which does all the work for the group.
  const gpu::Coalesced g = ctx.coalesce();
  const std::size_t rounded = alloc_core::SizeClassMap::round16(size);
  const std::size_t prefix = ctx.scan_exclusive_add(rounded);
  const std::size_t total = ctx.reduce_add(rounded);

  std::byte* base = nullptr;
  if (g.is_leader()) {
    WarpHeader* wh = header_for(ctx);
    if (wh != nullptr) {
      if (total > cfg_.superblock_bytes) {
        // Warp total exceeds the maximum SuperBlock: forward to the CUDA
        // allocator (still registered so warp_free_all reclaims it).
        base = static_cast<std::byte*>(system_.malloc(ctx, total));
        if (base != nullptr && !register_block(ctx, wh, base)) {
          system_.free(ctx, base);
          base = nullptr;
        }
      } else {
        if (wh->current == nullptr ||
            wh->current_off + total > cfg_.superblock_bytes) {
          auto* sb = static_cast<std::byte*>(
              system_.malloc(ctx, cfg_.superblock_bytes));
          if (sb != nullptr && !register_block(ctx, wh, sb)) {
            system_.free(ctx, sb);
            sb = nullptr;
          }
          if (sb != nullptr) {
            wh->current = sb;
            wh->current_off = 0;
          }
        }
        if (wh->current != nullptr &&
            wh->current_off + total <= cfg_.superblock_bytes) {
          base = wh->current + wh->current_off;
          wh->current_off += total;
        }
      }
    }
  }
  base = ctx.broadcast(g, base, g.leader);
  return base == nullptr ? nullptr : base + prefix;
}

void* FDGMalloc::malloc(gpu::ThreadCtx& ctx, std::size_t size) {
  return warp_malloc(ctx, size);
}

void FDGMalloc::free(gpu::ThreadCtx& /*ctx*/, void* /*ptr*/) {
  // By design there is no way to free single allocations (§2.4).
}

void FDGMalloc::warp_free_all(gpu::ThreadCtx& ctx) {
  const gpu::Coalesced g = ctx.coalesce();
  if (g.is_leader()) {
    const std::size_t slot = ctx.global_warp_id() % cfg_.max_warps;
    auto* wh = reinterpret_cast<WarpHeader*>(ctx.atomic_exch(
        reinterpret_cast<std::uintptr_t*>(&warp_table_[slot]),
        std::uintptr_t{0}));
    if (wh != nullptr) {
      SuperBlockList* list = wh->head;
      while (list != nullptr) {
        for (std::uint32_t i = 0; i < list->total_count; ++i) {
          system_.free(ctx, list->blocks[i]);
        }
        SuperBlockList* next = list->next;
        system_.free(ctx, list);
        list = next;
      }
      system_.free(ctx, wh);
    }
  }
  ctx.sync_group(g);
}

}  // namespace gms::alloc
