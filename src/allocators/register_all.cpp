#include "alloc_core/resilient_manager.h"
#include "alloc_core/warp_aggregator.h"
#include "allocators/atomic_alloc.h"
#include "allocators/bulk_alloc.h"
#include "allocators/cuda_standin.h"
#include "allocators/fdg_malloc.h"
#include "allocators/halloc.h"
#include "allocators/ouroboros.h"
#include "allocators/reg_eff.h"
#include "allocators/scatter_alloc.h"
#include "allocators/xmalloc.h"
#include "core/registry.h"
#include "core/stack_builder.h"
#include "core/validating_manager.h"
#include "hostalloc/extent_best_fit.h"
#include "hostalloc/host_buddy.h"
#include "hostalloc/stream_pool.h"

namespace gms::core {

namespace {

template <typename Manager, typename... Extra>
ManagerFactory make_factory(Extra... extra) {
  return [extra...](gpu::Device& dev, std::size_t heap) {
    return std::make_unique<Manager>(dev, heap, extra...);
  };
}

/// Registers one base variant. Traits are probed exactly once per factory —
/// a throwaway manager on the caller's probe device — and cached in the
/// registry entry; decorated twins later derive their traits from this
/// cache instead of probing again.
void add(gpu::Device& probe_dev, char selector, ManagerFactory factory,
         std::shared_ptr<const ConfigModel> config = nullptr) {
  Registry::instance().add(RegistryEntry{
      .traits = factory(probe_dev, 16u << 20)->traits(),
      .selector = selector,
      .factory = std::move(factory),
      .config = std::move(config),
  });
}

/// Registers a configurable base variant: the entry's stock factory builds
/// `defaults`, and a TypedConfigModel (shared schema + these per-entry
/// defaults) handles "{k=v}" overrides. The eager canonicalize({}) call
/// runs the schema's cross-field checks against the defaults at startup —
/// a misregistered entry fails loudly, not at first override.
template <typename Manager>
void add_cfg(gpu::Device& probe_dev, char selector,
             typename Manager::Config defaults = {}) {
  auto model = std::make_shared<TypedConfigModel<Manager>>(
      Manager::config_schema(), defaults);
  (void)model->canonicalize({});
  add(probe_dev, selector, make_factory<Manager>(defaults), std::move(model));
}

/// ConfigModel for a decorated twin ("Halloc+V"): forwards the base entry's
/// schema surface and wraps its configured factory in the twin's stage, so
/// "Halloc+V{slab_bytes=2097152}" tunes the base under validation.
class StagedConfigModel final : public ConfigModel {
 public:
  StagedConfigModel(StackSpec::Stage stage,
                    std::shared_ptr<const ConfigModel> base)
      : stage_(stage), base_(std::move(base)) {}

  [[nodiscard]] const std::vector<ConfigFieldInfo>& fields() const override {
    return base_->fields();
  }
  [[nodiscard]] ConfigKV defaults() const override {
    return base_->defaults();
  }
  [[nodiscard]] ConfigKV canonicalize(const ConfigKV& o) const override {
    return base_->canonicalize(o);
  }
  [[nodiscard]] ManagerFactory configured_factory(
      const ConfigKV& o) const override {
    return StackBuilder::stage_factory(stage_, base_->configured_factory(o));
  }

 private:
  StackSpec::Stage stage_;
  std::shared_ptr<const ConfigModel> base_;
};

std::shared_ptr<const ConfigModel> staged_config(
    StackSpec::Stage stage, const std::shared_ptr<const ConfigModel>& base) {
  if (base == nullptr) return nullptr;
  return std::make_shared<StagedConfigModel>(stage, base);
}

/// Gives every registered variant a "<name>+V" validating twin (selector
/// 'v') and a "<name>+R" failure-recovery twin (selector 'e'), and every
/// general-purpose variant a "<name>+W" warp-aggregated twin (selector 'w'),
/// all wired through StackBuilder::stage_factory — the same path --stack
/// specs use. Twin traits are derived from the cached base traits (no probe
/// construction); twin names are interned in the registry so the
/// string_views outlive this translation unit.
void register_decorated_twins() {
  auto& reg = Registry::instance();
  const std::vector<RegistryEntry> base = reg.entries();  // snapshot
  for (const auto& e : base) {
    AllocatorTraits vt = ValidatingManager::decorate_traits(e.traits);
    vt.name = reg.intern(std::string(e.traits.name) + "+V");
    reg.add(RegistryEntry{
        .traits = vt,
        .selector = 'v',
        .factory = StackBuilder::stage_factory(StackSpec::Stage::kValidate,
                                               e.factory),
        .config = staged_config(StackSpec::Stage::kValidate, e.config)});

    AllocatorTraits rt = alloc_core::ResilientManager::decorate_traits(e.traits);
    rt.name = reg.intern(std::string(e.traits.name) + "+R");
    reg.add(RegistryEntry{
        .traits = rt,
        .selector = 'e',
        .factory = StackBuilder::stage_factory(StackSpec::Stage::kResilient,
                                               e.factory),
        .config = staged_config(StackSpec::Stage::kResilient, e.config)});

    if (!e.traits.general_purpose) continue;  // aggregation needs free/thread
    AllocatorTraits wt = alloc_core::WarpAggregator::decorate_traits(e.traits);
    wt.name = reg.intern(std::string(e.traits.name) + "+W");
    reg.add(RegistryEntry{
        .traits = wt,
        .selector = 'w',
        .factory = StackBuilder::stage_factory(StackSpec::Stage::kWarpAgg,
                                               e.factory),
        .config = staged_config(StackSpec::Stage::kWarpAgg, e.config)});
  }
}

}  // namespace

void register_all_allocators() {
  auto& reg = Registry::instance();
  if (!reg.entries().empty()) return;  // idempotent

  using alloc::Ouroboros;
  using alloc::RegEffAlloc;
  using QK = Ouroboros::QueueKind;

  // Scoped to this call (not a function-local static): probing must not
  // leave a device whose teardown order races the registry singleton's.
  gpu::Device probe_dev(32u << 20, gpu::GpuConfig{.num_sms = 1});

  // Paper selector letters: o+s+h+c+r+x (+a Atomic, +f FDGMalloc). Every
  // entry except the CudaStandin reference carries a ConfigModel, so
  // "Name{k=v}" overrides work uniformly across the population.
  add_cfg<alloc::AtomicAlloc>(probe_dev, 'a');
  add(probe_dev, 'c', make_factory<alloc::CudaStandin>());
  add_cfg<alloc::XMalloc>(probe_dev, 'x');
  add_cfg<alloc::ScatterAlloc>(probe_dev, 's');
  add_cfg<alloc::FDGMalloc>(probe_dev, 'f');
  add_cfg<alloc::Halloc>(probe_dev, 'h');

  // The four RegEff and six Ouroboros variants share one schema each; the
  // identity fields (fused/multi, queue/chunk_based) live only in the
  // per-entry defaults and are not override-reachable.
  add_cfg<RegEffAlloc>(probe_dev, 'r',
                       RegEffAlloc::Config{.fused = false, .multi = false});
  add_cfg<RegEffAlloc>(probe_dev, 'r',
                       RegEffAlloc::Config{.fused = true, .multi = false});
  add_cfg<RegEffAlloc>(probe_dev, 'r',
                       RegEffAlloc::Config{.fused = false, .multi = true});
  add_cfg<RegEffAlloc>(probe_dev, 'r',
                       RegEffAlloc::Config{.fused = true, .multi = true});

  for (bool chunk_based : {false, true}) {
    for (QK kind : {QK::kStandard, QK::kVirtArray, QK::kVirtLinked}) {
      add_cfg<Ouroboros>(probe_dev, 'o',
                         Ouroboros::Config{.queue = kind,
                                           .chunk_based = chunk_based});
    }
  }

  // Extension beyond the paper's evaluated population (§2.9 had no public
  // version): our BulkAllocator rebuild, selector 'b'.
  add_cfg<alloc::BulkAlloc>(probe_dev, 'b');

  // The host-based family (src/hostalloc, DESIGN.md §14), selector 'm':
  // the survey column the paper's device-side population omits — the host
  // plans every placement, the device only consumes.
  add_cfg<hostalloc::ExtentBestFit>(probe_dev, 'm');
  add_cfg<hostalloc::HostBuddy>(probe_dev, 'm');
  add_cfg<hostalloc::StreamPool>(probe_dev, 'm');

  register_decorated_twins();
}

}  // namespace gms::core
