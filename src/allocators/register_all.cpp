#include "allocators/atomic_alloc.h"
#include "allocators/bulk_alloc.h"
#include "allocators/cuda_standin.h"
#include "allocators/fdg_malloc.h"
#include "allocators/halloc.h"
#include "allocators/ouroboros.h"
#include "allocators/reg_eff.h"
#include "allocators/scatter_alloc.h"
#include "allocators/xmalloc.h"
#include "core/registry.h"
#include "core/validating_manager.h"

namespace gms::core {

namespace {

template <typename Manager, typename... Extra>
ManagerFactory make_factory(Extra... extra) {
  return [extra...](gpu::Device& dev, std::size_t heap) {
    return std::make_unique<Manager>(dev, heap, extra...);
  };
}

/// Builds a dummy manager once to copy its traits into the registry entry.
/// (Traits are static per variant; a tiny throwaway device keeps this cheap.)
AllocatorTraits probe_traits(const ManagerFactory& factory) {
  static gpu::Device probe_dev(32u << 20, gpu::GpuConfig{.num_sms = 1});
  return factory(probe_dev, 16u << 20)->traits();
}

void add(char selector, ManagerFactory factory) {
  Registry::instance().add(RegistryEntry{
      .traits = probe_traits(factory),
      .selector = selector,
      .factory = std::move(factory),
  });
}

/// Traits hold a string_view, but decorator names are built at runtime;
/// intern them so registry copies of the probed traits stay valid.
std::string_view intern(std::string s) {
  static std::vector<std::unique_ptr<std::string>> pool;
  pool.push_back(std::make_unique<std::string>(std::move(s)));
  return *pool.back();
}

/// Gives every registered variant a "<name>+V" twin wrapped in the
/// ValidatingManager (selector 'v'). Twins are traits-flagged `decorated`,
/// so default populations skip them; --validate and tests pick them by name.
void register_validated_twins() {
  auto& reg = Registry::instance();
  const std::vector<RegistryEntry> base = reg.entries();  // snapshot
  for (const auto& e : base) {
    const ManagerFactory inner = e.factory;
    ManagerFactory twin = [inner](gpu::Device& dev, std::size_t heap) {
      return std::make_unique<ValidatingManager>(dev, heap, inner);
    };
    AllocatorTraits traits = probe_traits(twin);
    traits.name = intern(std::string(e.traits.name) + "+V");
    reg.add(RegistryEntry{
        .traits = traits, .selector = 'v', .factory = std::move(twin)});
  }
}

}  // namespace

void register_all_allocators() {
  auto& reg = Registry::instance();
  if (!reg.entries().empty()) return;  // idempotent

  using alloc::Ouroboros;
  using alloc::RegEffAlloc;
  using QK = Ouroboros::QueueKind;

  // Paper selector letters: o+s+h+c+r+x (+a Atomic, +f FDGMalloc).
  add('a', make_factory<alloc::AtomicAlloc>());
  add('c', make_factory<alloc::CudaStandin>());
  add('x', make_factory<alloc::XMalloc>(alloc::XMalloc::Config{}));
  add('s', make_factory<alloc::ScatterAlloc>(alloc::ScatterAlloc::Config{}));
  add('f', make_factory<alloc::FDGMalloc>(alloc::FDGMalloc::Config{}));
  add('h', make_factory<alloc::Halloc>(alloc::Halloc::Config{}));

  add('r', make_factory<RegEffAlloc>(
               RegEffAlloc::Config{.fused = false, .multi = false}));
  add('r', make_factory<RegEffAlloc>(
               RegEffAlloc::Config{.fused = true, .multi = false}));
  add('r', make_factory<RegEffAlloc>(
               RegEffAlloc::Config{.fused = false, .multi = true}));
  add('r', make_factory<RegEffAlloc>(
               RegEffAlloc::Config{.fused = true, .multi = true}));

  for (bool chunk_based : {false, true}) {
    for (QK kind : {QK::kStandard, QK::kVirtArray, QK::kVirtLinked}) {
      add('o', make_factory<Ouroboros>(Ouroboros::Config{
                   .queue = kind, .chunk_based = chunk_based}));
    }
  }

  // Extension beyond the paper's evaluated population (§2.9 had no public
  // version): our BulkAllocator rebuild, selector 'b'.
  add('b', make_factory<alloc::BulkAlloc>(alloc::BulkAlloc::Config{}));

  register_validated_twins();
}

}  // namespace gms::core
