#include "alloc_core/resilient_manager.h"
#include "alloc_core/warp_aggregator.h"
#include "allocators/atomic_alloc.h"
#include "allocators/bulk_alloc.h"
#include "allocators/cuda_standin.h"
#include "allocators/fdg_malloc.h"
#include "allocators/halloc.h"
#include "allocators/ouroboros.h"
#include "allocators/reg_eff.h"
#include "allocators/scatter_alloc.h"
#include "allocators/xmalloc.h"
#include "core/registry.h"
#include "core/stack_builder.h"
#include "core/validating_manager.h"
#include "hostalloc/extent_best_fit.h"
#include "hostalloc/host_buddy.h"
#include "hostalloc/stream_pool.h"

namespace gms::core {

namespace {

template <typename Manager, typename... Extra>
ManagerFactory make_factory(Extra... extra) {
  return [extra...](gpu::Device& dev, std::size_t heap) {
    return std::make_unique<Manager>(dev, heap, extra...);
  };
}

/// Registers one base variant. Traits are probed exactly once per factory —
/// a throwaway manager on the caller's probe device — and cached in the
/// registry entry; decorated twins later derive their traits from this
/// cache instead of probing again.
void add(gpu::Device& probe_dev, char selector, ManagerFactory factory) {
  Registry::instance().add(RegistryEntry{
      .traits = factory(probe_dev, 16u << 20)->traits(),
      .selector = selector,
      .factory = std::move(factory),
  });
}

/// Gives every registered variant a "<name>+V" validating twin (selector
/// 'v') and a "<name>+R" failure-recovery twin (selector 'e'), and every
/// general-purpose variant a "<name>+W" warp-aggregated twin (selector 'w'),
/// all wired through StackBuilder::stage_factory — the same path --stack
/// specs use. Twin traits are derived from the cached base traits (no probe
/// construction); twin names are interned in the registry so the
/// string_views outlive this translation unit.
void register_decorated_twins() {
  auto& reg = Registry::instance();
  const std::vector<RegistryEntry> base = reg.entries();  // snapshot
  for (const auto& e : base) {
    AllocatorTraits vt = ValidatingManager::decorate_traits(e.traits);
    vt.name = reg.intern(std::string(e.traits.name) + "+V");
    reg.add(RegistryEntry{
        .traits = vt,
        .selector = 'v',
        .factory = StackBuilder::stage_factory(StackSpec::Stage::kValidate,
                                               e.factory)});

    AllocatorTraits rt = alloc_core::ResilientManager::decorate_traits(e.traits);
    rt.name = reg.intern(std::string(e.traits.name) + "+R");
    reg.add(RegistryEntry{
        .traits = rt,
        .selector = 'e',
        .factory = StackBuilder::stage_factory(StackSpec::Stage::kResilient,
                                               e.factory)});

    if (!e.traits.general_purpose) continue;  // aggregation needs free/thread
    AllocatorTraits wt = alloc_core::WarpAggregator::decorate_traits(e.traits);
    wt.name = reg.intern(std::string(e.traits.name) + "+W");
    reg.add(RegistryEntry{
        .traits = wt,
        .selector = 'w',
        .factory = StackBuilder::stage_factory(StackSpec::Stage::kWarpAgg,
                                               e.factory)});
  }
}

}  // namespace

void register_all_allocators() {
  auto& reg = Registry::instance();
  if (!reg.entries().empty()) return;  // idempotent

  using alloc::Ouroboros;
  using alloc::RegEffAlloc;
  using QK = Ouroboros::QueueKind;

  // Scoped to this call (not a function-local static): probing must not
  // leave a device whose teardown order races the registry singleton's.
  gpu::Device probe_dev(32u << 20, gpu::GpuConfig{.num_sms = 1});

  // Paper selector letters: o+s+h+c+r+x (+a Atomic, +f FDGMalloc).
  add(probe_dev, 'a', make_factory<alloc::AtomicAlloc>());
  add(probe_dev, 'c', make_factory<alloc::CudaStandin>());
  add(probe_dev, 'x', make_factory<alloc::XMalloc>(alloc::XMalloc::Config{}));
  add(probe_dev, 's',
      make_factory<alloc::ScatterAlloc>(alloc::ScatterAlloc::Config{}));
  add(probe_dev, 'f',
      make_factory<alloc::FDGMalloc>(alloc::FDGMalloc::Config{}));
  add(probe_dev, 'h', make_factory<alloc::Halloc>(alloc::Halloc::Config{}));

  add(probe_dev, 'r',
      make_factory<RegEffAlloc>(
          RegEffAlloc::Config{.fused = false, .multi = false}));
  add(probe_dev, 'r',
      make_factory<RegEffAlloc>(
          RegEffAlloc::Config{.fused = true, .multi = false}));
  add(probe_dev, 'r',
      make_factory<RegEffAlloc>(
          RegEffAlloc::Config{.fused = false, .multi = true}));
  add(probe_dev, 'r',
      make_factory<RegEffAlloc>(
          RegEffAlloc::Config{.fused = true, .multi = true}));

  for (bool chunk_based : {false, true}) {
    for (QK kind : {QK::kStandard, QK::kVirtArray, QK::kVirtLinked}) {
      add(probe_dev, 'o',
          make_factory<Ouroboros>(Ouroboros::Config{
              .queue = kind, .chunk_based = chunk_based}));
    }
  }

  // Extension beyond the paper's evaluated population (§2.9 had no public
  // version): our BulkAllocator rebuild, selector 'b'.
  add(probe_dev, 'b', make_factory<alloc::BulkAlloc>(alloc::BulkAlloc::Config{}));

  // The host-based family (src/hostalloc, DESIGN.md §14), selector 'm':
  // the survey column the paper's device-side population omits — the host
  // plans every placement, the device only consumes.
  add(probe_dev, 'm',
      make_factory<hostalloc::ExtentBestFit>(hostalloc::ExtentBestFit::Config{}));
  add(probe_dev, 'm',
      make_factory<hostalloc::HostBuddy>(hostalloc::HostBuddy::Config{}));
  add(probe_dev, 'm',
      make_factory<hostalloc::StreamPool>(hostalloc::StreamPool::Config{}));

  register_decorated_twins();
}

}  // namespace gms::core
