#pragma once

#include <array>

#include "allocators/common.h"

namespace gms::alloc {

/// Stand-in for the proprietary device-side CUDA-Allocator (§2.1).
///
/// NVIDIA publishes no implementation details, so — like the paper, which
/// could "only speculate as to its internal structure" — we build a manager
/// that reproduces its *observed* behaviour on every axis §4 measures:
///  * "some larger, divisible unit that can be split into smaller sizes"
///    with "a clear split in performance right before 2048 B": three unit
///    granularities (128 B / 512 B / 4 KiB) yield the characteristic
///    staircase and the pre-2 KiB split;
///  * reliability valued over performance: each unit region is guarded by a
///    global lock and uses first-fit bitmap search, so it works for any size
///    and never corrupts, but is consistently outperformed for small sizes;
///  * allocation cost grows with live-allocation count and heap size (the
///    bitmap scan lengthens as the region fills) — the reason the paper's
///    out-of-memory case had to be reined in by the one-hour timeout;
///  * returned addresses spread over the whole region (rotating first-fit
///    hint), matching its worst-case Fig. 11a address range.
class CudaStandin final : public core::MemoryManager {
 public:
  CudaStandin(gpu::Device& dev, std::size_t heap_bytes);
  /// Sub-range constructor for managers that relay large requests here.
  CudaStandin(std::byte* base, std::size_t bytes);

  [[nodiscard]] bool contains(const void* p) const;

  [[nodiscard]] const core::AllocatorTraits& traits() const override;
  [[nodiscard]] void* malloc(gpu::ThreadCtx& ctx, std::size_t size) override;
  void free(gpu::ThreadCtx& ctx, void* ptr) override;

 private:
  /// One unit-granular sub-heap: lock word + rotating hint + bitmap + data.
  /// Small-unit regions keep the header inline (waste bounded by the unit);
  /// the 4 KiB region uses a side-header table so 4/8 KiB requests fit their
  /// units exactly instead of spilling a whole extra unit.
  struct Region {
    std::uint32_t* lock = nullptr;
    std::uint64_t* hint = nullptr;
    std::uint64_t* bitmap = nullptr;  // 1 bit per unit, set = in use
    std::uint64_t* side_headers = nullptr;  // per-unit {magic, count}, or null
    std::byte* data = nullptr;
    std::size_t unit = 0;
    std::size_t num_units = 0;

    /// Finds and claims `k` contiguous units; returns unit index or ~0.
    /// The bitmap scan and bit flips go through the instrumented device
    /// accessors — the walk is device-memory traffic, and its length is the
    /// observable that makes this manager's fill-dependent slowdown visible
    /// to counter-based samplers the same way the other managers' search
    /// loops are.
    std::size_t claim(gpu::ThreadCtx& ctx, std::size_t k);
    void release(gpu::ThreadCtx& ctx, std::size_t first_unit, std::size_t k);
    /// Flips `k` bits starting at `first_unit` (set or clear), one
    /// instrumented store per touched bitmap word.
    void flip(gpu::ThreadCtx& ctx, std::size_t first_unit, std::size_t k,
              bool set);
  };

  struct Header {
    std::uint32_t magic;
    std::uint32_t region;
    std::uint64_t first_unit;
    std::uint64_t unit_count;
    std::uint64_t pad;
  };
  static_assert(sizeof(Header) == 32);
  static constexpr std::uint32_t kMagic = 0xCDAA110Cu;

  [[nodiscard]] unsigned region_for(std::size_t payload) const;

  std::array<Region, 3> regions_{};
};

}  // namespace gms::alloc
