#include "allocators/halloc.h"

#include "alloc_core/sub_arena.h"

namespace gms::alloc {

namespace {
constexpr core::AllocatorTraits kTraits{
    .name = "Halloc",
    .family = "Halloc",
    .paper_ref = "[1], GTC 2014",
    .year = 2014,
    .general_purpose = true,
    .supports_free = true,
    .individual_free = true,
    .max_direct_size = 3072,
    .relays_large_to_system = true,
    .its_safe = false,  // pre-Volta warp-synchronous build in the survey
    .stable = true,
    .malloc_state_bytes = 40,  // paper: ~40 registers for malloc
    .free_state_bytes = 24,    // 20-30 for free
};

// Step primes for the hash traversal, per class (in the spirit of Fig. 5's
// h(c,i): a size-dependent stride, co-prime with the block count, in practice
// faster than linear probing).
constexpr std::uint32_t kStepPrimes[4] = {7, 11, 13, 17};
}  // namespace

const alloc_core::SizeClassMap& Halloc::block_classes() {
  static const alloc_core::SizeClassMap map = alloc_core::SizeClassMap::ladder(
      {16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048,
       3072});
  return map;
}

const core::ConfigSchema<Halloc::Config>& Halloc::config_schema() {
  using core::Pow2;
  static const auto schema = [] {
    core::ConfigSchema<Config> s;
    s.u64("slab_bytes", &Config::slab_bytes, 1u << 16, 1u << 24, Pow2::kYes,
          {1u << 20, 1u << 21, 1u << 22, 1u << 23})
        .u64("relay_percent", &Config::relay_percent, 5, 80, Pow2::kNo,
             {20, 33, 50})
        .dbl("head_replace_fill", &Config::head_replace_fill, 0.5, 0.99,
             {0.7, 0.835, 0.95})
        .dbl("sparse_fill", &Config::sparse_fill, 0.0, 0.5, {0.02, 0.1})
        .dbl("busy_fill", &Config::busy_fill, 0.1, 0.99, {0.4, 0.6, 0.8})
        .ladder("ladder", &Config::ladder,
                {"16:24:32:48:64:96:128:192:256:384:512:768:1024:1536:2048:"
                 "3072",
                 "16:32:64:128:256:512:1024:2048:4096",
                 "16:48:128:384:1024:3072"})
        .check([](const Config& c) {
          if (c.sparse_fill >= c.busy_fill) {
            throw core::ConfigError(
                core::ConfigError::Kind::kOutOfRange, "sparse_fill",
                "config field 'sparse_fill': must be below busy_fill");
          }
          const auto rungs = core::parse_ladder_string(c.ladder, "ladder");
          if (rungs.back() > c.slab_bytes / 2) {
            throw core::ConfigError(
                core::ConfigError::Kind::kBadLadder, "ladder",
                "config field 'ladder': top rung exceeds slab_bytes/2");
          }
        });
    return s;
  }();
  return schema;
}

Halloc::Halloc(gpu::Device& dev, std::size_t heap_bytes, Config cfg)
    : cfg_(std::move(cfg)),
      classes_(alloc_core::SizeClassMap::parse(cfg_.ladder)),
      traits_(kTraits) {
  traits_.max_direct_size = classes_.max_bytes();
  core::Stopwatch timer;
  alloc_core::SubArena carver(dev, heap_bytes);
  const auto& classes = classes_;

  const std::size_t relay_bytes = heap_bytes * cfg_.relay_percent / 100;
  const std::size_t slab_region = heap_bytes - relay_bytes;
  // Bitmap sized for the densest class (16 B blocks).
  bitmap_words_ = (cfg_.slab_bytes / classes.class_bytes(0) + 63) / 64;
  num_slabs_ = static_cast<std::uint32_t>(
      slab_region /
      (cfg_.slab_bytes + sizeof(std::uint64_t) * (1 + bitmap_words_) + 64));
  if (num_slabs_ == 0) num_slabs_ = 1;

  slab_state_ = carver.take<std::uint64_t>(num_slabs_, alignof(std::uint64_t),
                                           "slab-state");
  bitmaps_ = carver.take<std::uint64_t>(num_slabs_ * bitmap_words_,
                                        alignof(std::uint64_t), "bitmaps");
  heads_ = carver.take<std::uint32_t>(classes.num_classes(),
                                      alignof(std::uint32_t), "heads");
  auto* queue_words = carver.take<std::uint64_t>(
      BoundedTicketQueue::layout_words(num_slabs_ + 1), alignof(std::uint64_t),
      "free-queue");
  free_slabs_ = BoundedTicketQueue(queue_words, num_slabs_ + 1);
  free_slabs_.init_host();
  slab_base_ = carver.take<std::byte>(std::size_t{num_slabs_} * cfg_.slab_bytes,
                                      4096, "slabs");

  // The paper measures Halloc's initialisation ~5.5x above the average: it
  // pre-registers every slab up front. We do the analogous work — every slab
  // is walked, its state and bitmap cleared, its id pushed to the free queue.
  for (std::uint32_t s = 0; s < num_slabs_; ++s) {
    slab_state_[s] = 0;
    for (std::size_t w = 0; w < bitmap_words_; ++w) slab_bitmap(s)[w] = 0;
    free_slabs_.push_host(s);
  }
  for (std::uint32_t c = 0; c < classes.num_classes(); ++c) {
    heads_[c] = kInvalid;
  }

  std::size_t rest = 0;
  auto* relay_base = carver.take_rest(rest, 16, "relay");
  relay_.engage(relay_base, rest);
  init_ms_ = timer.elapsed_ms();
}

const core::AllocatorTraits& Halloc::traits() const { return traits_; }

std::uint32_t Halloc::slab_class(gpu::ThreadCtx& ctx, std::uint32_t slab) {
  return state_cls(ctx.atomic_load(&slab_state_[slab]));
}

std::uint32_t Halloc::claim_block(gpu::ThreadCtx& ctx, std::uint32_t slab,
                                  std::uint32_t cls) {
  const std::uint32_t cap = capacity(cls);
  const std::size_t words = (cap + 63) / 64;
  std::uint64_t* bitmap = slab_bitmap(slab);
  // Hash traversal (Fig. 5): start word scattered by thread, stride by a
  // class-dependent prime so concurrent claimants fan out over the bitmap.
  const std::uint32_t start =
      (ctx.thread_rank() * 0x9E3779B9u + ctx.smid() * 7919u) % words;
  const std::uint32_t step = kStepPrimes[cls % 4] % words == 0
                                 ? 1
                                 : kStepPrimes[cls % 4];
  // Bounded sweeps: normally a count reservation guarantees a free bit, but
  // a racing class-switch of the slab can strand the reservation; the caller
  // rolls it back and re-resolves the head instead of spinning.
  for (unsigned sweep = 0; sweep < 512; ++sweep) {
    for (std::size_t i = 0; i < words; ++i) {
      const std::size_t w = (start + i * step) % words;
      const std::uint64_t seen = ctx.atomic_load(&bitmap[w]);
      std::uint64_t valid = ~0ull;
      if (w == words - 1 && cap % 64 != 0) valid = (1ull << (cap % 64)) - 1;
      const std::uint64_t free_bits = ~seen & valid;
      if (free_bits == 0) continue;
      const unsigned bit = static_cast<unsigned>(std::countr_zero(free_bits));
      if ((ctx.atomic_or(&bitmap[w], std::uint64_t{1} << bit) & (std::uint64_t{1} << bit)) == 0) {
        return static_cast<std::uint32_t>(w * 64 + bit);
      }
    }
    // A racing reservation holds a count slot but has not set its bit yet.
    ctx.backoff();
  }
  return kInvalid;
}

std::uint32_t Halloc::replace_head(gpu::ThreadCtx& ctx, std::uint32_t cls,
                                   std::uint32_t stale_head) {
  // Try a fresh slab first.
  std::uint64_t id = 0;
  if (free_slabs_.try_dequeue(ctx, id)) {
    auto slab = static_cast<std::uint32_t>(id);
    // Free slabs can switch between chunk/block sizes at will.
    if (ctx.atomic_cas(&slab_state_[slab], std::uint64_t{0},
                       make_state(cls + 1, 0)) == 0) {
      ctx.atomic_cas(&heads_[cls], stale_head, slab);
      return slab;
    }
    // Raced: somebody revived this id; fall through to scanning.
  }
  // Scan for a same-class slab with room — sparse and moderately filled slabs
  // first, busy slabs (> 60 %) only as the last resort, per the paper.
  std::uint32_t busy_fallback = kInvalid;
  const auto cap = capacity(cls);
  for (std::uint32_t s = 0; s < num_slabs_; ++s) {
    const std::uint64_t state = ctx.atomic_load(&slab_state_[s]);
    if (state_cls(state) != cls + 1) continue;
    const std::uint32_t count = state_count(state);
    if (count >= cap) continue;
    if (count > static_cast<std::uint32_t>(cfg_.busy_fill * cap)) {
      busy_fallback = s;
      continue;
    }
    ctx.atomic_cas(&heads_[cls], stale_head, s);
    return s;
  }
  if (busy_fallback != kInvalid) {
    ctx.atomic_cas(&heads_[cls], stale_head, busy_fallback);
  }
  return busy_fallback;
}

void* Halloc::malloc(gpu::ThreadCtx& ctx, std::size_t size) {
  if (size == 0) size = 1;
  const auto& classes = classes_;
  const std::uint32_t cls = classes.class_for(size);
  if (cls == alloc_core::SizeClassMap::kNoClass) {
    return relay_.malloc(ctx, size);
  }
  const std::uint32_t cap = capacity(cls);

  for (unsigned attempt = 0; attempt < 64; ++attempt) {
    std::uint32_t slab = ctx.atomic_load(&heads_[cls]);
    if (slab == kInvalid ||
        state_cls(ctx.atomic_load(&slab_state_[slab])) != cls + 1) {
      slab = replace_head(ctx, cls, slab);
      if (slab == kInvalid) return nullptr;
    }
    // Reserve a slot with a *warp-aggregated* counter update — the group
    // issues one RMW, Halloc's signature trick. The 32-bit add targets the
    // count half of the packed 64-bit state (little-endian: low word), which
    // keeps the release path's full-word CAS atomic wrt. count and class.
    auto* count_word = reinterpret_cast<std::uint32_t*>(&slab_state_[slab]);
    const std::uint32_t prev = ctx.aggregated_atomic_add(count_word, 1u);
    if (state_cls(ctx.atomic_load(&slab_state_[slab])) != cls + 1 ||
        prev >= cap) {
      ctx.atomic_sub(count_word, 1u);
      replace_head(ctx, cls, slab);
      continue;
    }
    // Early head replacement beyond the 83.5 % fill level keeps later
    // claimants off nearly-full bitmaps.
    if (prev + 1 > static_cast<std::uint32_t>(cfg_.head_replace_fill * cap)) {
      replace_head(ctx, cls, slab);
    }
    const std::uint32_t block = claim_block(ctx, slab, cls);
    if (block == kInvalid) {
      ctx.atomic_sub(count_word, 1u);  // stranded reservation: retry clean
      replace_head(ctx, cls, slab);
      continue;
    }
    return slab_base_ + std::size_t{slab} * cfg_.slab_bytes +
           std::size_t{block} * classes.class_bytes(cls);
  }
  return nullptr;
}

void Halloc::free(gpu::ThreadCtx& ctx, void* ptr) {
  if (ptr == nullptr) return;
  auto* p = static_cast<std::byte*>(ptr);
  if (p < slab_base_ ||
      p >= slab_base_ + std::size_t{num_slabs_} * cfg_.slab_bytes) {
    relay_.free(ctx, ptr);
    return;
  }
  const std::size_t off = static_cast<std::size_t>(p - slab_base_);
  const auto slab = static_cast<std::uint32_t>(off / cfg_.slab_bytes);
  const std::uint64_t state = ctx.atomic_load(&slab_state_[slab]);
  const std::uint32_t cls = state_cls(state) - 1;
  const std::size_t in_slab = off % cfg_.slab_bytes;
  const auto block = static_cast<std::uint32_t>(
      in_slab / classes_.class_bytes(cls));
  ctx.atomic_and(&slab_bitmap(slab)[block / 64],
                 ~(std::uint64_t{1} << (block % 64)));
  auto* count_word = reinterpret_cast<std::uint32_t*>(&slab_state_[slab]);
  const std::uint32_t prev = ctx.aggregated_atomic_add(
      count_word, static_cast<std::uint32_t>(-1));
  if (prev == 1 && ctx.atomic_load(&heads_[cls]) != slab) {
    // Fully empty and not the active head: mark the slab free so any class
    // may take it ("free slabs can switch between chunk sizes").
    if (ctx.atomic_cas(&slab_state_[slab], make_state(cls + 1, 0),
                       std::uint64_t{0}) == make_state(cls + 1, 0)) {
      const bool ok = free_slabs_.try_enqueue(ctx, slab);
      (void)ok;  // queue is sized num_slabs_+1: cannot be full
      assert(ok);
    }
  }
}

}  // namespace gms::alloc
