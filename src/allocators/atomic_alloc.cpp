#include "allocators/atomic_alloc.h"

#include "alloc_core/size_class_map.h"
#include "alloc_core/sub_arena.h"

namespace gms::alloc {

namespace {
constexpr core::AllocatorTraits kTraits{
    .name = "Atomic",
    .family = "Baseline",
    .paper_ref = "§4 baseline",
    .year = 2014,
    .general_purpose = false,  // cannot free
    .warp_level_only = false,
    .supports_free = false,
    .individual_free = false,
    .its_safe = true,
    .stable = true,
    .malloc_state_bytes = 16,
    .free_state_bytes = 0,
};
}  // namespace

const core::ConfigSchema<AtomicAlloc::Config>& AtomicAlloc::config_schema() {
  static const auto schema = [] {
    core::ConfigSchema<Config> s;
    s.u64("granule", &Config::granule, 1, 4096, core::Pow2::kYes,
          {8, 16, 32, 64, 128, 256});
    return s;
  }();
  return schema;
}

AtomicAlloc::AtomicAlloc(gpu::Device& dev, std::size_t heap_bytes, Config cfg)
    : cfg_(cfg) {
  core::Stopwatch timer;
  alloc_core::SubArena carver(dev, heap_bytes);
  offset_ = carver.take<std::uint64_t>(1, alignof(std::uint64_t), "bump");
  *offset_ = 0;
  data_ = carver.take_rest(capacity_, 16, "data");
  init_ms_ = timer.elapsed_ms();
}

const core::AllocatorTraits& AtomicAlloc::traits() const { return kTraits; }

void* AtomicAlloc::malloc(gpu::ThreadCtx& ctx, std::size_t size) {
  // granule=16 reproduces the historical SizeClassMap::round16 exactly.
  const auto bytes = core::round_up(size, cfg_.granule);
  const auto old = ctx.atomic_add(offset_, static_cast<std::uint64_t>(bytes));
  if (old + bytes > capacity_) {
    // Roll back so later, smaller requests can still succeed.
    ctx.atomic_sub(offset_, static_cast<std::uint64_t>(bytes));
    return nullptr;
  }
  return data_ + old;
}

void AtomicAlloc::free(gpu::ThreadCtx& /*ctx*/, void* /*ptr*/) {
  // By design: the baseline cannot reclaim memory.
}

}  // namespace gms::alloc
