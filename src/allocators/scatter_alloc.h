#pragma once

#include "allocators/common.h"

namespace gms::alloc {

/// ScatterAlloc (Steinberger et al., InPar 2012) — §2.3 / Fig. 2.
///
/// Memory is split into fixed 4 KiB pages grouped into Super Blocks. A hash
/// of (requested size, multiprocessor id) scatters allocation requests over a
/// super block's pages; linear probing resolves collisions, regions with fill
/// counters let the probe skip exhausted areas quickly. Each page serves one
/// chunk size (fixed at first allocation from the page); free chunks are
/// tracked in a 32-bit page usage bitfield, with a second on-page hierarchy
/// level for up to 1024 chunks per page. Requests that do not fit a page are
/// served as multiple consecutive pages from specially reserved super blocks
/// — the path responsible for the paper's steep performance drop past 2 KiB.
class ScatterAlloc final : public core::MemoryManager {
 public:
  struct Config {
    std::size_t page_size = 4096;
    std::size_t pages_per_superblock = 1024;  // 4 MiB data per super block
    std::size_t pages_per_region = 64;
    /// Fraction (as 1/N) of super blocks reserved for multi-page requests.
    std::size_t reserved_fraction = 4;
    /// Linear-probe budget within one super block before advancing.
    std::size_t probe_limit = 256;
    /// Probe step within a super block. Odd (schema-enforced) so the walk
    /// visits every page of a pow2 super block; 1 = the paper's linear probe.
    std::size_t hash_stride = 1;
  };

  /// Schema binding Config to the runtime "{k=v}" layer (scatter_alloc.cpp).
  static const core::ConfigSchema<Config>& config_schema();

  ScatterAlloc(gpu::Device& dev, std::size_t heap_bytes, Config cfg);
  ScatterAlloc(gpu::Device& dev, std::size_t heap_bytes)
      : ScatterAlloc(dev, heap_bytes, Config{}) {}

  [[nodiscard]] const Config& config() const { return cfg_; }

  [[nodiscard]] const core::AllocatorTraits& traits() const override;
  [[nodiscard]] void* malloc(gpu::ThreadCtx& ctx, std::size_t size) override;
  void free(gpu::ThreadCtx& ctx, void* ptr) override;

  /// Walks every page's packed state word and the multi-page bitmap,
  /// checking the invariants that survive a cancelled kernel: chunk sizes
  /// are 16 B-rounded and page-sized, fill counts never exceed capacity, no
  /// page is stuck mid-initialisation, and recorded multi-page runs have
  /// their claim bits set. Lost chunks (count without a visible owner) are
  /// leakage, not corruption, and pass.
  [[nodiscard]] core::AuditResult audit() override;

  /// Exposed for white-box tests: page-state accessors.
  [[nodiscard]] std::size_t num_pages() const { return num_pages_; }
  [[nodiscard]] std::uint32_t page_chunk_size(std::size_t page) const;
  [[nodiscard]] std::uint32_t page_count(std::size_t page) const;

 private:
  // Page state packs {chunk_size | kInitFlag : high 32, count : low 32} into
  // one CAS-able word. count is bumped first to reserve, then a usage bit is
  // claimed — the reservation bounds bit-search retries.
  static constexpr std::uint64_t kInitFlag = 0x80000000ull << 32;
  static std::uint64_t make_state(std::uint32_t chunk, std::uint32_t count) {
    return (static_cast<std::uint64_t>(chunk) << 32) | count;
  }
  static std::uint32_t state_chunk(std::uint64_t s) {
    return static_cast<std::uint32_t>(s >> 32) & 0x7FFFFFFFu;
  }
  static std::uint32_t state_count(std::uint64_t s) {
    return static_cast<std::uint32_t>(s);
  }

  /// Chunks with size < 128 B need the on-page hierarchy (capacity > 32).
  [[nodiscard]] bool hierarchical(std::uint32_t chunk) const {
    return chunk < 128;
  }
  [[nodiscard]] std::uint32_t page_capacity(std::uint32_t chunk) const;

  void* try_alloc_on_page(gpu::ThreadCtx& ctx, std::size_t page,
                          std::uint32_t chunk);
  void* claim_fresh_page(gpu::ThreadCtx& ctx, std::size_t page,
                         std::uint32_t chunk);
  [[nodiscard]] std::uint32_t* usage_words(std::size_t page,
                                           std::uint32_t chunk);
  [[nodiscard]] std::byte* chunk_base(std::size_t page, std::uint32_t chunk);

  void* malloc_chunk(gpu::ThreadCtx& ctx, std::uint32_t chunk);
  void* malloc_multi_page(gpu::ThreadCtx& ctx, std::size_t size);
  void free_multi_page(gpu::ThreadCtx& ctx, void* ptr, std::size_t page);

  Config cfg_;
  std::size_t num_superblocks_ = 0;
  std::size_t chunk_superblocks_ = 0;  // the rest is reserved for multi-page
  std::size_t num_pages_ = 0;

  std::uint64_t* page_state_ = nullptr;    // one word per page
  std::uint32_t* page_bitfield_ = nullptr; // level-1 usage bits per page
  std::uint32_t* region_full_ = nullptr;   // full pages per region
  std::uint64_t* multi_bitmap_ = nullptr;  // page-claim bits, reserved SBs
  std::uint32_t* multi_count_ = nullptr;   // pages per multi-page allocation
  std::uint32_t* active_sb_ = nullptr;
  std::byte* pages_ = nullptr;

  static constexpr std::uint32_t kMultiMagic = 0x5CA77E8Du;
};

}  // namespace gms::alloc
