#include "allocators/reg_eff.h"

#include "alloc_core/sub_arena.h"

namespace gms::alloc {

namespace {
// Flag bit pairs inside one 64-bit word: bit 2i = chunk start, 2i+1 = in use.
constexpr std::uint64_t start_bit(std::uint32_t unit) {
  return 1ull << ((unit % 32) * 2);
}
constexpr std::uint64_t alloc_bit(std::uint32_t unit) {
  return 2ull << ((unit % 32) * 2);
}
}  // namespace

const core::ConfigSchema<RegEffAlloc::Config>& RegEffAlloc::config_schema() {
  static const auto schema = [] {
    core::ConfigSchema<Config> s;
    // fused/multi pick the registry variant and are deliberately unbound.
    s.u64("min_split_units", &Config::min_split_units, 2, 64, core::Pow2::kNo,
          {2, 3, 4, 8, 16})
        .u64("max_walk_steps", &Config::max_walk_steps, 1000, 10'000'000,
             core::Pow2::kNo, {50'000, 200'000, 1'000'000});
    return s;
  }();
  return schema;
}

RegEffAlloc::RegEffAlloc(gpu::Device& dev, std::size_t heap_bytes, Config cfg)
    : cfg_(cfg) {
  core::Stopwatch timer;
  num_arenas_ = cfg_.multi ? dev.config().num_sms : 1;

  traits_ = core::AllocatorTraits{
      .name = cfg_.fused ? (cfg_.multi ? "RegEff-CFM" : "RegEff-CF")
                         : (cfg_.multi ? "RegEff-CM" : "RegEff-C"),
      .family = "Reg-Eff",
      .paper_ref = "[19], CGF 2015",
      .year = 2014,
      .general_purpose = true,
      .supports_free = true,
      .individual_free = true,
      .its_safe = false,  // paper: pre-Volta warp-synchronous builds only
      // Paper: "not all variants are entirely stable" — the multi variants
      // showed the repeated-allocation slowdowns in §4.2.1.
      .stable = !cfg_.multi,
      // The paper's headline: lowest register usage of all approaches; the
      // fused variants touch one header word fewer.
      .malloc_state_bytes = cfg_.fused ? 20u : 24u,
      .free_state_bytes = cfg_.fused ? 12u : 16u,
  };

  alloc_core::SubArena carver(dev, heap_bytes);
  // Side flags cost 2 bits per 16 B unit = 1.6 % of the heap.
  const std::size_t est_units = heap_bytes / kUnit;
  flag_words_ = carver.take<std::uint64_t>(est_units / 32 + 1,
                                           alignof(std::uint64_t), "flags");
  offsets_ = carver.take<std::uint32_t>(num_arenas_, alignof(std::uint32_t),
                                        "arena-offsets");
  std::size_t rest = 0;
  pool_ = carver.take_rest(rest, kUnit, "chunk-pool");
  heap_units_ = static_cast<std::uint32_t>(rest / kUnit);

  // Pre-split each arena's share into the binary-heap chunk ladder (Fig. 4).
  const std::uint32_t per_arena = heap_units_ / num_arenas_;
  for (unsigned a = 0; a < num_arenas_; ++a) {
    const std::uint32_t first = a * per_arena;
    const std::uint32_t end =
        (a + 1 == num_arenas_) ? heap_units_ : (a + 1) * per_arena;
    presplit(first, end);
    offsets_[a] = first;
  }
  init_ms_ = timer.elapsed_ms();
}

void RegEffAlloc::presplit(std::uint32_t first_unit, std::uint32_t end_unit) {
  // Recursive halving: chunks of R/2, R/4, ... down to 256 units (4 KiB);
  // "the memory not used by the heap forms the last chunk".
  std::uint32_t cur = first_unit;
  std::uint32_t remaining = end_unit - first_unit;
  while (remaining > 512) {
    const std::uint32_t half = remaining / 2;
    // host-side init: plain writes, the arena is not yet shared
    flag_words_[cur / 32] |= start_bit(cur);
    *link_word(cur) = cur + half;
    if (!cfg_.fused) *size_word(cur) = (half - 1) * kUnit;
    cur += half;
    remaining -= half;
  }
  flag_words_[cur / 32] |= start_bit(cur);
  *link_word(cur) = end_unit;
  if (!cfg_.fused) *size_word(cur) = (remaining - 1) * kUnit;
}

const core::AllocatorTraits& RegEffAlloc::traits() const { return traits_; }

std::uint32_t* RegEffAlloc::link_word(std::uint32_t unit) {
  return reinterpret_cast<std::uint32_t*>(pool_ + std::size_t{unit} * kUnit);
}
std::uint32_t* RegEffAlloc::size_word(std::uint32_t unit) {
  return link_word(unit) + 1;
}

bool RegEffAlloc::flags_start(gpu::ThreadCtx& ctx, std::uint32_t unit) {
  return (ctx.atomic_load(&flag_words_[unit / 32]) & start_bit(unit)) != 0;
}

bool RegEffAlloc::try_claim(gpu::ThreadCtx& ctx, std::uint32_t unit) {
  std::uint64_t* word = &flag_words_[unit / 32];
  for (;;) {
    const std::uint64_t seen = ctx.atomic_load(word);
    if ((seen & start_bit(unit)) == 0) return false;  // absorbed meanwhile
    if ((seen & alloc_bit(unit)) != 0) return false;  // claimed by another
    if (ctx.atomic_cas(word, seen, seen | alloc_bit(unit)) == seen) {
      return true;
    }
    // The CAS can fail because of *neighbouring* chunks' bits; retry.
  }
}

void RegEffAlloc::release(gpu::ThreadCtx& ctx, std::uint32_t unit) {
  ctx.atomic_and(&flag_words_[unit / 32], ~alloc_bit(unit));
}

void RegEffAlloc::absorb(gpu::ThreadCtx& ctx, std::uint32_t unit) {
  ctx.atomic_and(&flag_words_[unit / 32],
                 ~(start_bit(unit) | alloc_bit(unit)));
}

void RegEffAlloc::mark_start(gpu::ThreadCtx& ctx, std::uint32_t unit) {
  ctx.atomic_or(&flag_words_[unit / 32], start_bit(unit));
}

unsigned RegEffAlloc::arena_of(const gpu::ThreadCtx& ctx) const {
  return cfg_.multi ? ctx.smid() % num_arenas_ : 0;
}

void* RegEffAlloc::malloc(gpu::ThreadCtx& ctx, std::size_t size) {
  if (size == 0) size = 1;
  // A request beyond the whole heap can never be served; reject it before
  // the 32-bit unit math truncates it into a small "successful" one.
  if (size > std::size_t{heap_units_} * kUnit) return nullptr;
  const auto need_units =
      static_cast<std::uint32_t>((size + kUnit - 1) / kUnit);
  const unsigned arena = arena_of(ctx);

  std::uint32_t off = ctx.atomic_load(&offsets_[arena]) % heap_units_;
  std::uint32_t lap_start = off;
  unsigned laps = 0;
  for (std::size_t step = 0; step < cfg_.max_walk_steps; ++step) {
    if (!flags_start(ctx, off)) {
      // Stale position (chunk absorbed under us): restart from the shared
      // offset — unit 0 is always a valid anchor (wrap merges are forbidden).
      off = ctx.atomic_load(&offsets_[arena]) % heap_units_;
      if (!flags_start(ctx, off)) off = 0;
      lap_start = off;
      continue;
    }
    const std::uint32_t next = ctx.atomic_load(link_word(off));
    if (next <= off || next > heap_units_) {
      off = 0;  // garbage link from a stale header: re-anchor
      lap_start = 0;
      continue;
    }
    const std::uint32_t chunk_units = next - off - 1;  // minus header
    if (chunk_units >= need_units && try_claim(ctx, off)) {
      // Re-read the link now that the chunk is ours.
      const std::uint32_t owned_next = ctx.atomic_load(link_word(off));
      const std::uint32_t owned_units = owned_next - off - 1;
      if (owned_units < need_units) {
        release(ctx, off);  // shrunk by a racing merge partner? move on
      } else {
        // Split when the remainder can hold a useful chunk ("maximum
        // fragmentation constant").
        const std::uint32_t used = need_units + 1;
        if (owned_units + 1 - used >=
            static_cast<std::uint32_t>(cfg_.min_split_units)) {
          const std::uint32_t split = off + used;
          ctx.atomic_store(link_word(split), owned_next);
          if (!cfg_.fused) {
            ctx.atomic_store(size_word(split),
                             (owned_next - split - 1) * kUnit);
          }
          mark_start(ctx, split);
          ctx.atomic_store(link_word(off), split);
          if (!cfg_.fused) ctx.atomic_store(size_word(off), need_units * kUnit);
        }
        ctx.atomic_store(&offsets_[arena],
                         ctx.atomic_load(link_word(off)) % heap_units_);
        return pool_ + std::size_t{off} * kUnit + kUnit;
      }
    }
    off = next % heap_units_;
    if (off == lap_start && ++laps >= 2) break;  // full circle twice: OOM
  }
  return nullptr;
}

void RegEffAlloc::free(gpu::ThreadCtx& ctx, void* ptr) {
  if (ptr == nullptr) return;
  const std::size_t byte_off = static_cast<std::byte*>(ptr) - pool_;
  const auto unit = static_cast<std::uint32_t>(byte_off / kUnit) - 1;
  assert(flags_start(ctx, unit) && "free of a non-chunk pointer");

  // Try to concatenate with the following chunk (Fig. 4 "free & concatenate")
  // before publishing ourselves as free. We own `unit`, so its link is stable.
  const std::uint32_t next = ctx.atomic_load(link_word(unit));
  if (next < heap_units_ && flags_start(ctx, next) && try_claim(ctx, next)) {
    const std::uint32_t next_next = ctx.atomic_load(link_word(next));
    ctx.atomic_store(link_word(unit), next_next);
    if (!cfg_.fused) {
      ctx.atomic_store(size_word(unit), (next_next - unit - 1) * kUnit);
    }
    absorb(ctx, next);
  }
  release(ctx, unit);
}

std::size_t RegEffAlloc::count_free_chunks(gpu::ThreadCtx& ctx) {
  std::size_t count = 0;
  std::uint32_t off = 0;
  while (off < heap_units_) {
    if (!flags_start(ctx, off)) break;  // corrupt walk; tests assert count
    const std::uint64_t word = ctx.atomic_load(&flag_words_[off / 32]);
    if ((word & alloc_bit(off)) == 0) ++count;
    const std::uint32_t next = ctx.atomic_load(link_word(off));
    if (next <= off) break;
    off = next;
  }
  return count;
}

}  // namespace gms::alloc
