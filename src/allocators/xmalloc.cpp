#include "allocators/xmalloc.h"

#include <algorithm>

#include "alloc_core/sub_arena.h"

namespace gms::alloc {

namespace {
constexpr core::AllocatorTraits kTraits{
    .name = "XMalloc",
    .family = "XMalloc",
    .paper_ref = "[9], CIT 2010",
    .year = 2010,
    .general_purpose = true,
    .supports_free = true,
    .individual_free = true,
    .its_safe = false,  // needs pre-Volta warp-synchronous execution
    .stable = false,    // paper: "not stable and fails most test cases"
    // The paper's register outlier: 168 for malloc vs 24 for free.
    .malloc_state_bytes = 168,
    .free_state_bytes = 24,
};
}  // namespace

const core::ConfigSchema<XMalloc::Config>& XMalloc::config_schema() {
  using core::Pow2;
  static const auto schema = [] {
    core::ConfigSchema<Config> s;
    s.u64("fifo1_capacity", &Config::fifo1_capacity, 64, 1u << 16, Pow2::kYes,
          {1024, 4096, 16384})
        .u64("fifo2_capacity", &Config::fifo2_capacity, 64, 1u << 16,
             Pow2::kYes, {256, 1024, 4096})
        .u64("class_base", &Config::class_base, 16, 256, Pow2::kYes,
             {16, 32, 64})
        .u64("num_classes", &Config::num_classes, 1,
             alloc_core::SizeClassMap::kMaxClasses, Pow2::kNo, {7, 9, 11, 13})
        .u64("blocks_per_super", &Config::blocks_per_super, 1, 32, Pow2::kNo,
             {8, 16, 32})
        .u64("large_split_units", &Config::large_split_units, 2, 64,
             Pow2::kNo, {2, 4, 8, 16})
        .check([](const Config& c) {
          // The geometric ladder must stay within SizeClassMap's size_t
          // arithmetic; cap the top payload at 16 MiB.
          if ((c.class_base << (c.num_classes - 1)) > (std::size_t{1} << 24)) {
            throw core::ConfigError(
                core::ConfigError::Kind::kBadLadder, "num_classes",
                "config field 'num_classes': top payload class exceeds "
                "16 MiB");
          }
        });
    return s;
  }();
  return schema;
}

XMalloc::XMalloc(gpu::Device& dev, std::size_t heap_bytes, Config cfg)
    : cfg_(cfg) {
  core::Stopwatch timer;
  cfg_.num_classes = std::clamp<std::size_t>(
      cfg_.num_classes, 1, alloc_core::SizeClassMap::kMaxClasses);
  cfg_.blocks_per_super = std::clamp(cfg_.blocks_per_super, 1u, 32u);
  classes_ = alloc_core::SizeClassMap::geometric(
      cfg_.class_base, static_cast<unsigned>(cfg_.num_classes));
  full_mask_ = cfg_.blocks_per_super == 32
                   ? 0xFFFFFFFFu
                   : (1u << cfg_.blocks_per_super) - 1;
  fifo1_.resize(cfg_.num_classes);
  fifo2_.resize(cfg_.num_classes);
  alloc_core::SubArena carver(dev, heap_bytes);
  for (std::size_t c = 0; c < cfg_.num_classes; ++c) {
    auto* s1 = carver.take<std::uint64_t>(
        BoundedTicketQueue::layout_words(cfg_.fifo1_capacity),
        alignof(std::uint64_t), "fifo1");
    fifo1_[c] = BoundedTicketQueue(s1, cfg_.fifo1_capacity);
    fifo1_[c].init_host();
    auto* s2 = carver.take<std::uint64_t>(
        BoundedTicketQueue::layout_words(cfg_.fifo2_capacity),
        alignof(std::uint64_t), "fifo2");
    fifo2_[c] = BoundedTicketQueue(s2, cfg_.fifo2_capacity);
    fifo2_[c].init_host();
  }
  const std::size_t est_units = heap_bytes / ListHeap::kUnit;
  auto* flags = carver.take<std::uint64_t>(ListHeap::flag_words(est_units),
                                           alignof(std::uint64_t),
                                           "heap-flags");
  std::size_t rest = 0;
  pool_base_ = carver.take_rest(rest, ListHeap::kUnit, "memoryblock-heap");
  heap_.init_host(pool_base_,
                  static_cast<std::uint32_t>(rest / ListHeap::kUnit), flags,
                  static_cast<std::uint32_t>(cfg_.large_split_units));
  init_ms_ = timer.elapsed_ms();
}

const core::AllocatorTraits& XMalloc::traits() const { return kTraits; }

core::AuditResult XMalloc::audit() {
  core::AuditResult result;
  result.supported = true;
  std::string why;
  result.ok = heap_.audit_host(result.structures_walked, &why);
  if (!result.ok) {
    result.failures = 1;
    result.detail = why;
  }
  return result;
}

void* XMalloc::take_from_superblock(gpu::ThreadCtx& ctx,
                                    std::uint32_t sb_unit,
                                    std::uint32_t cls) {
  // Split the Superblock into its 32 Basicblocks (Fig. 1): index 0 serves the
  // caller, the rest feed the first-level buffer (overflow stays with the
  // parent via returned_mask).
  auto* sb = reinterpret_cast<SuperHeader*>(pool_base_ +
                                            std::size_t{sb_unit} * 16);
  sb->magic = kSuperMagic;
  sb->cls = cls;
  ctx.atomic_store(&sb->returned_mask, 0u);
  auto* blocks = reinterpret_cast<std::byte*>(sb + 1);
  const std::size_t stride = basic_bytes(cls);
  for (unsigned i = 0; i < cfg_.blocks_per_super; ++i) {
    auto* hdr = reinterpret_cast<BasicHeader*>(blocks + i * stride);
    hdr->magic = kBasicMagic;
    hdr->cls = cls;
    hdr->sb_unit = sb_unit;
    hdr->index = i;
    if (i == 0) continue;
    const auto unit = static_cast<std::uint64_t>(
        (reinterpret_cast<std::byte*>(hdr) - pool_base_) / 16);
    if (!fifo1_[cls].try_enqueue(ctx, unit)) {
      ctx.atomic_or(&sb->returned_mask, 1u << i);
    }
  }
  return blocks + sizeof(BasicHeader);
}

void* XMalloc::malloc_small(gpu::ThreadCtx& ctx, std::uint32_t cls) {
  std::uint64_t unit = 0;
  // Fast path: a recycled Basicblock from the first-level buffer.
  if (fifo1_[cls].try_dequeue(ctx, unit)) {
    return pool_base_ + unit * 16 + sizeof(BasicHeader);
  }
  // Refill path: a buffered Superblock from the second-level buffer.
  if (fifo2_[cls].try_dequeue(ctx, unit)) {
    return take_from_superblock(ctx, static_cast<std::uint32_t>(unit), cls);
  }
  // Slow path: carve a brand-new Superblock out of the Memoryblock heap.
  void* sb = heap_.malloc(ctx, super_bytes(cls));
  if (sb == nullptr) return nullptr;
  const auto sb_unit = static_cast<std::uint32_t>(
      (static_cast<std::byte*>(sb) - pool_base_) / 16);
  return take_from_superblock(ctx, sb_unit, cls);
}

void* XMalloc::malloc_large(gpu::ThreadCtx& ctx, std::size_t size) {
  auto* p = static_cast<std::byte*>(
      heap_.malloc(ctx, size + sizeof(BasicHeader)));
  if (p == nullptr) return nullptr;
  auto* hdr = reinterpret_cast<BasicHeader*>(p);
  hdr->magic = kBasicMagic;
  hdr->cls = kLargeClass;
  hdr->sb_unit = 0;
  hdr->index = 0;
  return p + sizeof(BasicHeader);
}

void* XMalloc::malloc(gpu::ThreadCtx& ctx, std::size_t size) {
  if (size == 0) size = 1;
  const unsigned c = classes_.class_for(size);
  if (c != alloc_core::SizeClassMap::kNoClass) {
    return malloc_small(ctx, c);
  }
  return malloc_large(ctx, size);
}

void XMalloc::free(gpu::ThreadCtx& ctx, void* ptr) {
  if (ptr == nullptr) return;
  auto* hdr = reinterpret_cast<BasicHeader*>(static_cast<std::byte*>(ptr) -
                                             sizeof(BasicHeader));
  assert(hdr->magic == kBasicMagic && "free of a foreign pointer");
  if (hdr->cls == kLargeClass) {
    heap_.free(ctx, hdr);
    return;
  }
  const std::uint32_t cls = hdr->cls;
  const auto unit = static_cast<std::uint64_t>(
      (reinterpret_cast<std::byte*>(hdr) - pool_base_) / 16);
  if (fifo1_[cls].try_enqueue(ctx, unit)) return;

  // First-level buffer full: return the block to its parent Superblock.
  auto* sb = reinterpret_cast<SuperHeader*>(pool_base_ +
                                            std::size_t{hdr->sb_unit} * 16);
  const std::uint32_t bit = 1u << hdr->index;
  const std::uint32_t before = ctx.atomic_or(&sb->returned_mask, bit);
  if ((before | bit) != full_mask_) return;

  // All Basicblocks are home again: recycle the Superblock. The CAS picks
  // exactly one reclaimer among racing final freers.
  if (ctx.atomic_cas(&sb->returned_mask, full_mask_, 0u) != full_mask_) {
    return;
  }
  if (!fifo2_[cls].try_enqueue(ctx, hdr->sb_unit)) {
    heap_.free(ctx, sb);  // buffers full: merge back into the Memoryblock heap
  }
}

}  // namespace gms::alloc
