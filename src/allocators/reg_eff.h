#pragma once

#include "allocators/common.h"

namespace gms::alloc {

/// Register-Efficient memory allocator (Vinkler & Havran, CGF 2015) —
/// §2.5 / Fig. 4. A circular memory pool organised as a single-linked list
/// of chunks. Allocation walks from a shared offset for the first free chunk
/// that fits, claims it with CAS and splits it when the remainder exceeds the
/// maximum-fragmentation constant; deallocation merges with the following
/// free chunk ("malloc & split / free & concatenate"). The memory is
/// pre-split into a binary-heap-like chunk ladder so the first allocations
/// do not serialize on one huge chunk.
///
/// Variants (paper names):
///  * Reg-Eff-C   — CircularMalloc: two header words, one shared offset.
///  * Reg-Eff-CF  — CircularFusedMalloc: fused single header word.
///  * Reg-Eff-CM  — CircularMultiMalloc: one offset *and* pre-split ladder
///                  per SM, trading fragmentation for fewer collisions.
///  * Reg-Eff-CFM — both.
///
/// Reproduction note (documented divergence): the original keeps the
/// allocation flag inline in the chunk header, which lets a stale traversal
/// claim a merged-away header — part of the instability the survey reports.
/// We keep the link words inline but move the {chunk-start, allocated} flags
/// into a side bitmap (2 bits per 16 B unit) whose CAS can never succeed on
/// an absorbed chunk. The walk length, split/merge behaviour and contention
/// profile are unchanged; the undefined behaviour is not reproduced.
class RegEffAlloc final : public core::MemoryManager {
 public:
  struct Config {
    bool fused = false;  ///< single fused header word (CF/CFM)
    bool multi = false;  ///< per-SM offsets and ladders (CM/CFM)
    std::size_t min_split_units = 3;  ///< smallest splinter: header + 32 B
    std::size_t max_walk_steps = 200'000;  ///< stand-in for the 1 h timeout
  };

  /// Schema over the tunable fields; `fused`/`multi` are the variant's
  /// registry identity (Reg-Eff-{C,CF,CM,CFM}) and not overridable.
  static const core::ConfigSchema<Config>& config_schema();

  RegEffAlloc(gpu::Device& dev, std::size_t heap_bytes, Config cfg);

  [[nodiscard]] const Config& config() const { return cfg_; }

  [[nodiscard]] const core::AllocatorTraits& traits() const override;
  [[nodiscard]] void* malloc(gpu::ThreadCtx& ctx, std::size_t size) override;
  void free(gpu::ThreadCtx& ctx, void* ptr) override;

  /// White-box hooks for tests.
  [[nodiscard]] std::size_t count_free_chunks(gpu::ThreadCtx& ctx);

 private:
  static constexpr std::uint32_t kUnit = 16;

  // Side-bitmap flags, 2 bits per unit.
  [[nodiscard]] bool flags_start(gpu::ThreadCtx& ctx, std::uint32_t unit);
  bool try_claim(gpu::ThreadCtx& ctx, std::uint32_t unit);
  void release(gpu::ThreadCtx& ctx, std::uint32_t unit);
  void absorb(gpu::ThreadCtx& ctx, std::uint32_t unit);
  void mark_start(gpu::ThreadCtx& ctx, std::uint32_t unit);

  [[nodiscard]] std::uint32_t* link_word(std::uint32_t unit);
  [[nodiscard]] std::uint32_t* size_word(std::uint32_t unit);

  [[nodiscard]] unsigned arena_of(const gpu::ThreadCtx& ctx) const;
  void presplit(std::uint32_t first_unit, std::uint32_t end_unit);

  Config cfg_;
  unsigned num_arenas_ = 1;
  std::uint32_t heap_units_ = 0;
  std::uint64_t* flag_words_ = nullptr;  // 32 units per word
  std::uint32_t* offsets_ = nullptr;     // shared walk offsets, one per arena
  std::byte* pool_ = nullptr;
  core::AllocatorTraits traits_{};
};

}  // namespace gms::alloc
