#include "allocators/scatter_alloc.h"

#include <atomic>
#include <cstring>
#include <string>

#include "alloc_core/size_class_map.h"
#include "alloc_core/sub_arena.h"

namespace gms::alloc {

namespace {
constexpr core::AllocatorTraits kTraits{
    .name = "ScatterAlloc",
    .family = "ScatterAlloc",
    .paper_ref = "[17], InPar 2012",
    .year = 2012,
    .general_purpose = true,
    .supports_free = true,
    .individual_free = true,
    .resizable = true,  // super blocks may be chained in at kernel boundaries
    .its_safe = false,  // paper: needs warp-synchronous execution (<7.0)
    .stable = true,
    .malloc_state_bytes = 44,
    .free_state_bytes = 28,
};

// Scatter hash constants (primes, in the spirit of Fig. 2's k_S and k_mp;
// the warp factor provides the per-request scattering that gives the
// allocator its name — without it every thread of an SM probes the same
// page sequence and the linear probe degenerates).
constexpr std::uint64_t kSizeFactor = 38183;
constexpr std::uint64_t kSmFactor = 17497;
constexpr std::uint64_t kWarpFactor = 9949;

// Bytes reserved at the start of a hierarchical page for its 32 on-page
// level-2 usage words (1024 bits -> the paper's 1024-chunk page maximum).
constexpr std::size_t kHierBytes = 128;
}  // namespace

const core::ConfigSchema<ScatterAlloc::Config>& ScatterAlloc::config_schema() {
  using core::Pow2;
  static const auto schema = [] {
    core::ConfigSchema<Config> s;
    // page_size floor: hierarchical pages must fit kHierBytes of level-2
    // words plus at least one chunk. pages_per_superblock stays pow2 so an
    // odd hash_stride is coprime with it and the probe covers every page.
    s.u64("page_size", &Config::page_size, 512, std::size_t{1} << 20,
          Pow2::kYes, {2048, 4096, 8192, 16384})
        .u64("pages_per_superblock", &Config::pages_per_superblock, 64,
             std::size_t{1} << 16, Pow2::kYes, {256, 512, 1024, 2048})
        .u64("pages_per_region", &Config::pages_per_region, 8, 1024,
             Pow2::kYes, {16, 32, 64, 128})
        .u64("reserved_fraction", &Config::reserved_fraction, 2, 64,
             Pow2::kNo, {2, 4, 8, 16})
        .u64("probe_limit", &Config::probe_limit, 8, 1 << 16, Pow2::kNo,
             {32, 64, 128, 256, 512})
        .u64("hash_stride", &Config::hash_stride, 1, 255, Pow2::kNo,
             {1, 3, 7, 17, 31})
        .check([](const Config& c) {
          if (c.hash_stride % 2 == 0) {
            throw core::ConfigError(
                core::ConfigError::Kind::kOutOfRange, "hash_stride",
                "config field 'hash_stride': must be odd (coprime with the "
                "pow2 super-block page count)");
          }
          if (c.pages_per_region > c.pages_per_superblock) {
            throw core::ConfigError(
                core::ConfigError::Kind::kOutOfRange, "pages_per_region",
                "config field 'pages_per_region': exceeds "
                "pages_per_superblock");
          }
        });
    return s;
  }();
  return schema;
}

ScatterAlloc::ScatterAlloc(gpu::Device& dev, std::size_t heap_bytes,
                           Config cfg)
    : cfg_(cfg) {
  core::Stopwatch timer;
  const std::size_t sb_bytes = cfg_.page_size * cfg_.pages_per_superblock;
  // Leave ~2% headroom for metadata when sizing the super block count.
  num_superblocks_ = (heap_bytes - heap_bytes / 50) / sb_bytes;
  if (num_superblocks_ < 2) num_superblocks_ = 2;
  const std::size_t reserved =
      std::max<std::size_t>(1, num_superblocks_ / cfg_.reserved_fraction);
  chunk_superblocks_ = num_superblocks_ - reserved;
  num_pages_ = num_superblocks_ * cfg_.pages_per_superblock;

  alloc_core::SubArena carver(dev, heap_bytes);
  page_state_ = carver.take<std::uint64_t>(num_pages_, alignof(std::uint64_t),
                                           "page-state");
  page_bitfield_ = carver.take<std::uint32_t>(
      num_pages_, alignof(std::uint32_t), "page-bitfield");
  const std::size_t regions =
      num_pages_ / cfg_.pages_per_region + 1;
  region_full_ = carver.take<std::uint32_t>(regions, alignof(std::uint32_t),
                                            "region-full");
  multi_bitmap_ = carver.take<std::uint64_t>(
      num_pages_ / 64 + 1, alignof(std::uint64_t), "multi-bitmap");
  multi_count_ = carver.take<std::uint32_t>(num_pages_, alignof(std::uint32_t),
                                            "multi-count");
  active_sb_ = carver.take<std::uint32_t>(1, alignof(std::uint32_t),
                                          "active-sb");
  std::size_t rest = 0;
  pages_ = carver.take_rest(rest, cfg_.page_size, "pages");
  while (num_pages_ * cfg_.page_size > rest) {
    --num_superblocks_;
    --chunk_superblocks_;
    num_pages_ -= cfg_.pages_per_superblock;
  }
  init_ms_ = timer.elapsed_ms();
}

const core::AllocatorTraits& ScatterAlloc::traits() const { return kTraits; }

core::AuditResult ScatterAlloc::audit() {
  core::AuditResult result;
  result.supported = true;
  auto fail = [&result](std::string what) {
    ++result.failures;
    if (result.detail.empty()) result.detail = std::move(what);
  };
  const std::size_t chunk_pages =
      chunk_superblocks_ * cfg_.pages_per_superblock;
  for (std::size_t page = 0; page < chunk_pages; ++page) {
    ++result.structures_walked;
    const std::uint64_t state =
        std::atomic_ref<std::uint64_t>(page_state_[page])
            .load(std::memory_order_acquire);
    if (state == 0) continue;  // unassigned
    if ((state & kInitFlag) != 0) {
      // claim_fresh_page never yields while it owns the flag, so a set flag
      // at quiescence means the state word was overwritten.
      fail("scatter: page " + std::to_string(page) +
           " stuck mid-initialisation");
      continue;
    }
    const std::uint32_t chunk = state_chunk(state);
    if (chunk == 0 || chunk % 16 != 0 || chunk > cfg_.page_size / 2) {
      fail("scatter: page " + std::to_string(page) +
           " carries impossible chunk size " + std::to_string(chunk));
      continue;
    }
    const std::uint32_t count = state_count(state);
    if (count > page_capacity(chunk)) {
      fail("scatter: page " + std::to_string(page) + " fill count " +
           std::to_string(count) + " exceeds capacity " +
           std::to_string(page_capacity(chunk)));
    }
  }
  for (std::size_t page = chunk_pages; page < num_pages_; ++page) {
    ++result.structures_walked;
    const std::uint32_t k = std::atomic_ref<std::uint32_t>(multi_count_[page])
                                .load(std::memory_order_acquire);
    if (k == 0) continue;
    // Runs never cross a bitmap word and fit the reserved super blocks.
    if (k > 64 || page % 64 + k > 64 || page + k > num_pages_) {
      fail("scatter: multi-page run @" + std::to_string(page) + " of " +
           std::to_string(k) + " pages is out of range");
      continue;
    }
    const std::uint64_t mask = (k == 64 ? ~0ull : ((1ull << k) - 1))
                               << (page % 64);
    const std::uint64_t word =
        std::atomic_ref<std::uint64_t>(multi_bitmap_[page / 64])
            .load(std::memory_order_acquire);
    if ((word & mask) != mask) {
      fail("scatter: multi-page run @" + std::to_string(page) +
           " recorded without its claim bits");
    }
  }
  result.ok = result.failures == 0;
  return result;
}

std::uint32_t ScatterAlloc::page_capacity(std::uint32_t chunk) const {
  if (hierarchical(chunk)) {
    const auto cap = (cfg_.page_size - kHierBytes) / chunk;
    return static_cast<std::uint32_t>(std::min<std::size_t>(cap, 1024));
  }
  return static_cast<std::uint32_t>(cfg_.page_size / chunk);
}

std::uint32_t* ScatterAlloc::usage_words(std::size_t page,
                                         std::uint32_t chunk) {
  if (hierarchical(chunk)) {
    return reinterpret_cast<std::uint32_t*>(pages_ + page * cfg_.page_size);
  }
  return &page_bitfield_[page];
}

std::byte* ScatterAlloc::chunk_base(std::size_t page, std::uint32_t chunk) {
  return pages_ + page * cfg_.page_size + (hierarchical(chunk) ? kHierBytes : 0);
}

std::uint32_t ScatterAlloc::page_chunk_size(std::size_t page) const {
  return state_chunk(page_state_[page]);
}
std::uint32_t ScatterAlloc::page_count(std::size_t page) const {
  return state_count(page_state_[page]);
}

void* ScatterAlloc::claim_fresh_page(gpu::ThreadCtx& ctx, std::size_t page,
                                     std::uint32_t chunk) {
  const std::uint64_t claimed = make_state(chunk, 1) | kInitFlag;
  if (ctx.atomic_cas(&page_state_[page], std::uint64_t{0}, claimed) != 0) {
    return nullptr;  // somebody else claimed it first
  }
  // We own the page exclusively while the init flag is set: lay out the
  // usage hierarchy and take chunk 0 for ourselves.
  const std::uint32_t cap = page_capacity(chunk);
  if (hierarchical(chunk)) {
    auto* words = usage_words(page, chunk);
    const std::uint32_t groups = (cap + 31) / 32;
    for (std::uint32_t g = 0; g < 32; ++g) {
      if (g >= groups) {
        words[g] = ~0u;
        continue;
      }
      const std::uint32_t valid =
          std::min<std::uint32_t>(32, cap - g * 32);
      words[g] = valid == 32 ? 0u : ~((1u << valid) - 1u);
    }
    words[0] |= 1u;  // our chunk
    ctx.atomic_store(&page_bitfield_[page],
                     groups == 1 && cap == 1 ? 1u : 0u);
  } else {
    const std::uint32_t invalid = cap == 32 ? 0u : ~((1u << cap) - 1u);
    ctx.atomic_store(&page_bitfield_[page], invalid | 1u);
  }
  // Publish: drop the init flag so other lanes may join the page.
  ctx.atomic_and(&page_state_[page], ~kInitFlag);
  if (cap == 1) {
    ctx.atomic_add(&region_full_[page / cfg_.pages_per_region], 1u);
  }
  return chunk_base(page, chunk);
}

void* ScatterAlloc::try_alloc_on_page(gpu::ThreadCtx& ctx, std::size_t page,
                                      std::uint32_t chunk) {
  const std::uint32_t cap = page_capacity(chunk);
  // Reserve a slot first; the reservation guarantees a free bit exists.
  const std::uint64_t prev = ctx.atomic_add(&page_state_[page], std::uint64_t{1});
  if (state_chunk(prev) != chunk || (prev & kInitFlag) != 0 ||
      state_count(prev) >= cap) {
    ctx.atomic_sub(&page_state_[page], std::uint64_t{1});
    return nullptr;
  }
  if (state_count(prev) + 1 == cap) {
    ctx.atomic_add(&region_full_[page / cfg_.pages_per_region], 1u);
  }

  // Scatter the bit search start per thread to avoid bit-level collisions.
  const std::uint32_t start = (ctx.thread_rank() * 0x9E3779B9u) >> 16;
  if (!hierarchical(chunk)) {
    std::uint32_t* word = &page_bitfield_[page];
    for (;;) {
      const std::uint32_t seen = ctx.atomic_load(word);
      std::uint32_t free_bits = ~seen;
      if (free_bits == 0) {
        ctx.backoff();  // a racing reservation has not set its bit yet
        continue;
      }
      // Rotate so the search begins at the scattered position.
      const unsigned rot = start % 32;
      const std::uint32_t rotated = (free_bits >> rot) | (free_bits << (32 - rot) % 32);
      unsigned bit = (static_cast<unsigned>(std::countr_zero(
                          rotated == 0 ? free_bits : rotated)) +
                      (rotated == 0 ? 0 : rot)) %
                     32;
      if ((ctx.atomic_or(word, 1u << bit) & (1u << bit)) == 0) {
        return chunk_base(page, chunk) + bit * std::size_t{chunk};
      }
    }
  }

  // Hierarchical page: level 1 marks full groups, level 2 lives on the page.
  // Level 1 is strictly a *hint*: a concurrent free may clear a level-2 bit
  // after an allocator re-marked the group full, so when the hint claims
  // everything is full we must fall back to scanning the ground truth —
  // otherwise a reservation could spin on an invisible free chunk forever.
  auto* level2 = usage_words(page, chunk);
  const std::uint32_t groups = (cap + 31) / 32;
  const std::uint32_t group_mask =
      groups == 32 ? ~0u : ((1u << groups) - 1u);
  for (;;) {
    const std::uint32_t full = ctx.atomic_load(&page_bitfield_[page]);
    std::uint32_t candidates = ~full & group_mask;
    if (candidates == 0) candidates = group_mask;  // hint exhausted: scan all
    while (candidates != 0) {
      const unsigned g = static_cast<unsigned>(std::countr_zero(candidates));
      candidates &= candidates - 1;
      const std::uint32_t seen = ctx.atomic_load(&level2[g]);
      const std::uint32_t free_bits = ~seen;
      if (free_bits == 0) {
        // Group filled up under us: record it at level 1 and move on.
        ctx.atomic_or(&page_bitfield_[page], 1u << g);
        continue;
      }
      const unsigned bit = static_cast<unsigned>(std::countr_zero(free_bits));
      if ((ctx.atomic_or(&level2[g], 1u << bit) & (1u << bit)) == 0) {
        if ((seen | (1u << bit)) == ~0u) {
          ctx.atomic_or(&page_bitfield_[page], 1u << g);
        } else if ((full >> g) & 1u) {
          // Repair a stale "full" hint we scanned past.
          ctx.atomic_and(&page_bitfield_[page], ~(1u << g));
        }
        return chunk_base(page, chunk) +
               (g * 32 + bit) * std::size_t{chunk};
      }
    }
    ctx.backoff();  // racing reservations have not published their bits yet
  }
}

void* ScatterAlloc::malloc_chunk(gpu::ThreadCtx& ctx, std::uint32_t chunk) {
  const std::size_t pages_per_sb = cfg_.pages_per_superblock;
  const std::size_t start_sb = ctx.atomic_load(active_sb_) % chunk_superblocks_;
  for (std::size_t sb_step = 0; sb_step < chunk_superblocks_; ++sb_step) {
    const std::size_t sb = (start_sb + sb_step) % chunk_superblocks_;
    // Fig. 2: p = (size * k_S + mp * k_mp [+ warp * k_w]) mod pages/SB.
    const std::size_t p0 =
        (chunk * kSizeFactor + ctx.smid() * kSmFactor +
         ctx.global_warp_id() * kWarpFactor) %
        pages_per_sb;
    const std::size_t probes = std::min(cfg_.probe_limit, pages_per_sb);
    for (std::size_t step = 0; step < probes; ++step) {
      // Strided probe: hash_stride=1 is the paper's linear walk (and the
      // byte-identical default); odd strides decluster size collisions.
      const std::size_t page_in_sb =
          (p0 + step * cfg_.hash_stride) % pages_per_sb;
      const std::size_t page = sb * pages_per_sb + page_in_sb;
      // Region rejection: skip regions with no free chunk quickly.
      const std::size_t region = page / cfg_.pages_per_region;
      if (ctx.atomic_load(&region_full_[region]) >=
          cfg_.pages_per_region) {
        continue;
      }
      const std::uint64_t state = ctx.atomic_load(&page_state_[page]);
      if (state == 0) {
        if (void* p = claim_fresh_page(ctx, page, chunk)) return p;
        continue;  // lost the claim race; examine the page's new owner later
      }
      if (state_chunk(state) == chunk && (state & kInitFlag) == 0 &&
          state_count(state) < page_capacity(chunk)) {
        if (void* p = try_alloc_on_page(ctx, page, chunk)) return p;
      }
    }
    // This super block looks exhausted for our size: advance the shared
    // active pointer (paper: next super block investigated past fill level).
    ctx.atomic_cas(active_sb_, static_cast<std::uint32_t>(sb),
                   static_cast<std::uint32_t>((sb + 1) % chunk_superblocks_));
  }
  return nullptr;
}

void* ScatterAlloc::malloc_multi_page(gpu::ThreadCtx& ctx, std::size_t size) {
  // Page count is tracked in a side array, so 4/8 KiB requests fit their
  // pages exactly (no in-band header stealing a whole extra page).
  const std::size_t k = (size + cfg_.page_size - 1) / cfg_.page_size;
  if (k > 64) return nullptr;  // runs are confined to one bitmap word
  const std::size_t first_page = chunk_superblocks_ * cfg_.pages_per_superblock;
  const std::size_t first_word = first_page / 64;
  const std::size_t num_words = num_pages_ / 64;
  const std::uint32_t run_mask_bits = static_cast<std::uint32_t>(k);
  for (std::size_t w = first_word; w < num_words; ++w) {
    for (;;) {
      const std::uint64_t seen = ctx.atomic_load(&multi_bitmap_[w]);
      if (seen == ~0ull) break;
      // Find k consecutive zero bits inside this word.
      std::uint64_t free_bits = ~seen;
      std::uint64_t run = free_bits;
      for (std::uint32_t i = 1; i < run_mask_bits; ++i) run &= free_bits >> i;
      if (run == 0) break;
      const unsigned bit = static_cast<unsigned>(std::countr_zero(run));
      const std::uint64_t mask = ((k == 64 ? ~0ull : ((1ull << k) - 1)) << bit);
      if (ctx.atomic_cas(&multi_bitmap_[w], seen, seen | mask) == seen) {
        const std::size_t page = w * 64 + bit;
        ctx.atomic_store(&multi_count_[page], static_cast<std::uint32_t>(k));
        return pages_ + page * cfg_.page_size;
      }
      // CAS lost: re-read and retry this word.
    }
  }
  return nullptr;
}

void* ScatterAlloc::malloc(gpu::ThreadCtx& ctx, std::size_t size) {
  if (size == 0) size = 1;
  // Multi-page runs are confined to one 64-bit bitmap word, so anything
  // beyond 64 pages is unserviceable; reject before the 32-bit rounding
  // below can truncate a huge request into a small (or zero) chunk size.
  if (size > std::size_t{64} * cfg_.page_size) return nullptr;
  const auto rounded =
      static_cast<std::uint32_t>(alloc_core::SizeClassMap::round16(size));
  if (rounded <= cfg_.page_size / 2) {
    return malloc_chunk(ctx, rounded);
  }
  return malloc_multi_page(ctx, size);
}

void ScatterAlloc::free_multi_page(gpu::ThreadCtx& ctx, void* ptr,
                                   std::size_t page) {
  (void)ptr;
  const std::size_t k = ctx.atomic_load(&multi_count_[page]);
  assert(k != 0 && "multi-page free of foreign pointer");
  ctx.atomic_store(&multi_count_[page], 0u);
  const std::size_t w = page / 64;
  const unsigned bit = page % 64;
  const std::uint64_t mask = ((k == 64 ? ~0ull : ((1ull << k) - 1)) << bit);
  ctx.atomic_and(&multi_bitmap_[w], ~mask);
}

void ScatterAlloc::free(gpu::ThreadCtx& ctx, void* ptr) {
  if (ptr == nullptr) return;
  const std::size_t off = static_cast<std::byte*>(ptr) - pages_;
  const std::size_t page = off / cfg_.page_size;
  if (page >= chunk_superblocks_ * cfg_.pages_per_superblock) {
    free_multi_page(ctx, ptr, page);
    return;
  }
  const std::uint64_t state = ctx.atomic_load(&page_state_[page]);
  const std::uint32_t chunk = state_chunk(state);
  assert(chunk != 0 && "free on an unassigned page");
  const std::size_t in_page = off % cfg_.page_size;
  const std::uint32_t cap = page_capacity(chunk);

  if (hierarchical(chunk)) {
    const std::size_t idx = (in_page - kHierBytes) / chunk;
    auto* level2 = usage_words(page, chunk);
    const unsigned g = static_cast<unsigned>(idx / 32);
    ctx.atomic_and(&level2[g], ~(1u << (idx % 32)));
    ctx.atomic_and(&page_bitfield_[page], ~(1u << g));
  } else {
    const std::size_t idx = in_page / chunk;
    ctx.atomic_and(&page_bitfield_[page], ~(1u << idx));
  }

  const std::uint64_t prev = ctx.atomic_sub(&page_state_[page], std::uint64_t{1});
  if (state_count(prev) == cap) {
    ctx.atomic_sub(&region_full_[page / cfg_.pages_per_region], 1u);
  }
  if (state_count(prev) == 1) {
    // Last chunk gone: release the page for any future chunk size. The CAS
    // only succeeds while no new reservation has arrived.
    ctx.atomic_cas(&page_state_[page], make_state(chunk, 0), std::uint64_t{0});
  }
}

}  // namespace gms::alloc
