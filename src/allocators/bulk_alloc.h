#pragma once

#include <memory>
#include <vector>

#include "allocators/bulk_semaphore.h"
#include "alloc_core/size_class_map.h"
#include "allocators/common.h"
#include "allocators/lockfree_queue.h"

namespace gms::alloc {

/// Tree Buddy Allocator (§2.9): a static binary tree tracking the state of
/// large power-of-two blocks. Nodes are busy, split ("partial") or free;
/// status changes propagate from node to parent, and — per the paper —
/// consistency is kept by locking both node and parent. A per-node
/// max-free-order hint steers the descent.
class TreeBuddy {
 public:
  /// Node-word layout helpers: {lock:1 | state:2 | max_free_order:8}.
  static constexpr std::size_t meta_words(unsigned levels) {
    return (std::size_t{2} << levels) + 2;
  }

  /// Side tag per leaf: allocation order + 1 at a block's first leaf, or
  /// kChunkTag for blocks handed to UAlloc as chunks. Closes the free()
  /// routing question without trusting in-band magic bytes.
  static constexpr std::uint8_t kChunkTag = 0xFE;

  void init_host(std::byte* region, unsigned levels, std::size_t leaf_bytes,
                 std::uint32_t* node_words, std::uint8_t* leaf_tags);

  void set_leaf_tag(gpu::ThreadCtx& ctx, const void* block, std::uint8_t tag);
  [[nodiscard]] std::uint8_t leaf_tag(gpu::ThreadCtx& ctx, const void* block);
  /// Frees a block using the recorded order tag.
  void free_ptr(gpu::ThreadCtx& ctx, void* ptr);
  [[nodiscard]] std::byte* region() { return region_; }

  /// Allocates a block of 2^order leaves; nullptr when nothing fits.
  void* malloc_order(gpu::ThreadCtx& ctx, unsigned order);
  void free_block(gpu::ThreadCtx& ctx, void* ptr, unsigned order);

  [[nodiscard]] unsigned order_for(std::size_t bytes) const;
  [[nodiscard]] std::size_t leaf_bytes() const { return leaf_bytes_; }
  [[nodiscard]] unsigned levels() const { return levels_; }
  [[nodiscard]] bool contains(const void* p) const {
    auto* b = static_cast<const std::byte*>(p);
    return b >= region_ && b < region_ + (leaf_bytes_ << levels_);
  }

  /// Test hook: max contiguous order currently available.
  [[nodiscard]] unsigned root_max_free(gpu::ThreadCtx& ctx);

 private:
  static constexpr std::uint32_t kLock = 1u << 31;
  enum : std::uint32_t { kFree = 0, kSplit = 1, kBusy = 2 };
  static std::uint32_t make_node(std::uint32_t state, int max_free) {
    return (state << 8) | static_cast<std::uint32_t>(max_free + 1);
  }
  static std::uint32_t node_state(std::uint32_t w) { return (w >> 8) & 3u; }
  static int node_max_free(std::uint32_t w) {
    return static_cast<int>(w & 0xFFu) - 1;
  }

  std::uint32_t lock_node(gpu::ThreadCtx& ctx, std::size_t node);
  void store_node(gpu::ThreadCtx& ctx, std::size_t node, std::uint32_t state,
                  int max_free);
  void propagate(gpu::ThreadCtx& ctx, std::size_t node);
  [[nodiscard]] unsigned node_order(std::size_t node) const;

  std::byte* region_ = nullptr;
  std::uint32_t* nodes_ = nullptr;  // heap layout, root at index 1
  std::uint8_t* leaf_tags_ = nullptr;
  unsigned levels_ = 0;
  std::size_t leaf_bytes_ = 0;
};

/// BulkAllocator (Gelado & Garland, PPoPP 2019) — §2.9 / Fig. 6.
///
/// **Extension implementation.** The survey could not benchmark this
/// approach: "even after contacting the authors, no public version is
/// available for further testing". We rebuild it from the paper's
/// description as an extension beyond the survey's evaluated population;
/// traits().extension marks it so benches and tests can keep the paper's
/// sixteen-variant population intact by default.
///
/// Structure: the bulk semaphore (bulk_semaphore.h) is the synchronisation
/// primitive throughout. Requests >= 2 KiB go to the Tree Buddy Allocator;
/// smaller ones to the UnAligned Allocator (UAlloc): one arena per SM
/// handling 512 KiB chunks subdivided into 4 KiB bins of a static per-bin
/// size class, where the first two bins of each chunk hold the chunk's
/// allocation state. (The original's Read-Copy-Update bin-list maintenance
/// is replaced by a ticket queue of usable bins — documented divergence.)
class BulkAlloc final : public core::MemoryManager {
 public:
  struct Config {
    std::size_t chunk_bytes = 512 * 1024;
    std::size_t bin_bytes = 4096;
    std::size_t bins_queue_capacity = 4096;
    /// UAlloc size classes (16 << c ladder); the top class must fit a bin.
    std::size_t num_classes = 8;
  };

  /// Schema binding Config to the runtime "{k=v}" layer (bulk_alloc.cpp).
  static const core::ConfigSchema<Config>& config_schema();

  BulkAlloc(gpu::Device& dev, std::size_t heap_bytes, Config cfg);
  BulkAlloc(gpu::Device& dev, std::size_t heap_bytes)
      : BulkAlloc(dev, heap_bytes, Config{}) {}

  [[nodiscard]] const core::AllocatorTraits& traits() const override;
  [[nodiscard]] void* malloc(gpu::ThreadCtx& ctx, std::size_t size) override;
  void free(gpu::ThreadCtx& ctx, void* ptr) override;

  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Default class count (Config::num_classes overrides per instance).
  static constexpr std::size_t kNumClasses = 8;  // 16 B ... 2048 B
  static constexpr std::size_t class_bytes(std::size_t c) {
    return std::size_t{16} << c;
  }
  /// The same geometry as a shared SizeClassMap (request-side lookup).
  static const alloc_core::SizeClassMap& bin_classes();

 private:
  /// Per-bin metadata, stored in the chunk's first two (metadata) bins.
  struct BinMeta {
    std::uint32_t cls_plus1;   // 0 = unassigned
    std::uint32_t owner_sm;
    std::uint32_t used;
    std::uint32_t enqueued;    // 1 while the bin id sits in a queue
    std::uint64_t bitmap[4];   // up to 256 slots
  };
  struct ChunkHeader {
    std::uint32_t magic;
    std::uint32_t next_fresh_bin;  // bump within the chunk (2..bins-1)
    // BinMeta array follows.
  };
  static constexpr std::uint32_t kChunkMagic = 0xB07Cull;

  [[nodiscard]] std::uint32_t slots_per_bin(std::size_t cls) const {
    return static_cast<std::uint32_t>(cfg_.bin_bytes / class_bytes(cls));
  }
  [[nodiscard]] BinMeta* bin_meta(std::byte* chunk, std::uint32_t bin) const;

  /// Carves a fresh bin for (sm, cls); returns added slot count (0 = OOM).
  std::uint64_t refill_bin(gpu::ThreadCtx& ctx, unsigned sm, std::size_t cls);

  void* malloc_small(gpu::ThreadCtx& ctx, std::size_t cls);
  void free_small(gpu::ThreadCtx& ctx, std::byte* chunk, std::size_t off);

  /// The heap is covered by a forest of buddy trees (largest power-of-two
  /// first) so a non-power-of-two heap is not half wasted.
  void* forest_malloc(gpu::ThreadCtx& ctx, std::size_t bytes);
  TreeBuddy* forest_tree_of(const void* p);

  Config cfg_;
  alloc_core::SizeClassMap classes_;  ///< geometric(16, cfg_.num_classes)
  std::vector<TreeBuddy> forest_;
  unsigned num_sms_ = 1;
  std::uint64_t* sem_words_ = nullptr;   // [sm][cls]
  std::vector<BoundedTicketQueue> bin_queues_;  // [sm * num_classes + cls]
  std::byte** arena_chunk_ = nullptr;    // current fresh-bin chunk per SM
  std::uint32_t* arena_lock_ = nullptr;  // guards chunk replacement per SM
  std::byte* heap_base_ = nullptr;       // bin codes are offsets from here
};

}  // namespace gms::alloc
