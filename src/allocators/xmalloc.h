#pragma once

#include <array>

#include "alloc_core/size_class_map.h"
#include "allocators/common.h"
#include "allocators/list_heap.h"
#include "allocators/lockfree_queue.h"

namespace gms::alloc {

/// XMalloc (Huang et al., CIT 2010) — §2.2 / Fig. 1. The first
/// non-proprietary GPU allocator.
///
/// Large requests (and Superblocks) come from a heap segmented into free and
/// allocated Memoryblocks forming a linked list that supports merging —
/// "relatively slow, as the list has to be traversed". Small requests are
/// rounded to a static size class and preferably served from a per-class
/// lock-free FIFO (the first-level buffer) of Basicblocks. Basicblocks are
/// carved from Superblocks (32 per Superblock, Fig. 1); free Superblocks wait
/// in a second-level FIFO. Freed Basicblocks re-enter the first-level buffer
/// when possible, otherwise return to their parent Superblock; a Superblock
/// whose 32 Basicblocks all returned is recycled (second-level buffer, else
/// merged back into the heap).
///
/// Reproduction note: the original coalesces queue tickets at SIMD width on
/// pre-Fermi hardware; our queue keeps per-lane CAS tickets (the queue
/// semantics and fall-through behaviour are identical). The original's
/// instability ("fails most test cases") is architectural age, not something
/// we reproduce — but its slow list-walking large path and its huge malloc
/// footprint are faithfully present.
class XMalloc final : public core::MemoryManager {
 public:
  struct Config {
    std::size_t fifo1_capacity = 4096;  ///< basicblock slots per class
    std::size_t fifo2_capacity = 1024;  ///< superblock slots per class
  };

  XMalloc(gpu::Device& dev, std::size_t heap_bytes, Config cfg);
  XMalloc(gpu::Device& dev, std::size_t heap_bytes)
      : XMalloc(dev, heap_bytes, Config{}) {}

  [[nodiscard]] const core::AllocatorTraits& traits() const override;
  [[nodiscard]] void* malloc(gpu::ThreadCtx& ctx, std::size_t size) override;
  void free(gpu::ThreadCtx& ctx, void* ptr) override;

  /// Walks the Memoryblock list (ListHeap::audit_host): the slow large-path
  /// list is exactly the structure a stray write corrupts first.
  [[nodiscard]] core::AuditResult audit() override;

  static constexpr std::size_t kNumClasses = 9;  // 16 B ... 4096 B payloads
  static constexpr std::size_t class_payload(std::size_t c) {
    return std::size_t{16} << c;
  }
  /// The same geometry as a shared SizeClassMap (request-side lookup).
  static const alloc_core::SizeClassMap& payload_classes();

 private:
  struct BasicHeader {
    std::uint32_t magic;
    std::uint32_t cls;       ///< class index, or kLargeClass
    std::uint32_t sb_unit;   ///< parent superblock heap unit
    std::uint32_t index;     ///< basicblock index within the superblock
  };
  static_assert(sizeof(BasicHeader) == 16);
  struct SuperHeader {
    std::uint32_t magic;
    std::uint32_t cls;
    std::uint32_t returned_mask;  ///< basicblocks returned to the parent
    std::uint32_t pad;
  };
  static constexpr std::uint32_t kBasicMagic = 0x8A51Cu;
  static constexpr std::uint32_t kSuperMagic = 0x50B10Cu;
  static constexpr std::uint32_t kLargeClass = 0xFFFFFFFFu;
  static constexpr unsigned kBlocksPerSuper = 32;

  [[nodiscard]] static std::size_t basic_bytes(std::size_t c) {
    return sizeof(BasicHeader) + class_payload(c);
  }
  [[nodiscard]] static std::size_t super_bytes(std::size_t c) {
    return sizeof(SuperHeader) + kBlocksPerSuper * basic_bytes(c);
  }

  void* take_from_superblock(gpu::ThreadCtx& ctx, std::uint32_t sb_unit,
                             std::uint32_t cls);
  void* malloc_small(gpu::ThreadCtx& ctx, std::uint32_t cls);
  void* malloc_large(gpu::ThreadCtx& ctx, std::size_t size);

  Config cfg_;
  ListHeap heap_;
  std::array<BoundedTicketQueue, kNumClasses> fifo1_;
  std::array<BoundedTicketQueue, kNumClasses> fifo2_;
  std::byte* pool_base_ = nullptr;  // == heap pool base, for unit math
};

}  // namespace gms::alloc
