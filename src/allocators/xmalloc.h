#pragma once

#include <vector>

#include "alloc_core/size_class_map.h"
#include "allocators/common.h"
#include "allocators/list_heap.h"
#include "allocators/lockfree_queue.h"

namespace gms::alloc {

/// XMalloc (Huang et al., CIT 2010) — §2.2 / Fig. 1. The first
/// non-proprietary GPU allocator.
///
/// Large requests (and Superblocks) come from a heap segmented into free and
/// allocated Memoryblocks forming a linked list that supports merging —
/// "relatively slow, as the list has to be traversed". Small requests are
/// rounded to a static size class and preferably served from a per-class
/// lock-free FIFO (the first-level buffer) of Basicblocks. Basicblocks are
/// carved from Superblocks (32 per Superblock, Fig. 1); free Superblocks wait
/// in a second-level FIFO. Freed Basicblocks re-enter the first-level buffer
/// when possible, otherwise return to their parent Superblock; a Superblock
/// whose 32 Basicblocks all returned is recycled (second-level buffer, else
/// merged back into the heap).
///
/// Reproduction note: the original coalesces queue tickets at SIMD width on
/// pre-Fermi hardware; our queue keeps per-lane CAS tickets (the queue
/// semantics and fall-through behaviour are identical). The original's
/// instability ("fails most test cases") is architectural age, not something
/// we reproduce — but its slow list-walking large path and its huge malloc
/// footprint are faithfully present.
class XMalloc final : public core::MemoryManager {
 public:
  /// Runtime tuning surface (the seed of the ROADMAP tuner refactor): what
  /// used to be compile-time constants — the size-class ladder geometry and
  /// the superblock shape — are now per-instance parameters. The defaults
  /// reproduce the paper's geometry exactly; recorded traces replay
  /// byte-identically against a default-config instance (checked in
  /// tests/test_trace.cpp).
  struct Config {
    std::size_t fifo1_capacity = 4096;  ///< basicblock slots per class
    std::size_t fifo2_capacity = 1024;  ///< superblock slots per class
    std::size_t class_base = 16;        ///< smallest payload class (bytes)
    /// Geometric ladder length: payloads class_base << c, c in [0, n).
    /// Clamped to SizeClassMap::kMaxClasses.
    std::size_t num_classes = 9;  // 16 B ... 4096 B payloads
    /// Basicblocks carved per Superblock (Fig. 1 uses 32). Clamped to
    /// [1, 32]: returned_mask is one 32-bit word.
    unsigned blocks_per_super = 32;
    /// Smallest remainder (16 B units) the large-path ListHeap splits off a
    /// claimed Memoryblock; smaller leftovers stay as internal
    /// fragmentation. 4 is the historical behaviour.
    std::size_t large_split_units = 4;
  };

  /// Schema binding Config to the runtime "{k=v}" layer (xmalloc.cpp).
  static const core::ConfigSchema<Config>& config_schema();

  XMalloc(gpu::Device& dev, std::size_t heap_bytes, Config cfg);
  XMalloc(gpu::Device& dev, std::size_t heap_bytes)
      : XMalloc(dev, heap_bytes, Config{}) {}

  [[nodiscard]] const core::AllocatorTraits& traits() const override;
  [[nodiscard]] void* malloc(gpu::ThreadCtx& ctx, std::size_t size) override;
  void free(gpu::ThreadCtx& ctx, void* ptr) override;

  /// Walks the Memoryblock list (ListHeap::audit_host): the slow large-path
  /// list is exactly the structure a stray write corrupts first.
  [[nodiscard]] core::AuditResult audit() override;

  /// This instance's payload ladder (request-side lookup geometry).
  [[nodiscard]] const alloc_core::SizeClassMap& payload_classes() const {
    return classes_;
  }
  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  struct BasicHeader {
    std::uint32_t magic;
    std::uint32_t cls;       ///< class index, or kLargeClass
    std::uint32_t sb_unit;   ///< parent superblock heap unit
    std::uint32_t index;     ///< basicblock index within the superblock
  };
  static_assert(sizeof(BasicHeader) == 16);
  struct SuperHeader {
    std::uint32_t magic;
    std::uint32_t cls;
    std::uint32_t returned_mask;  ///< basicblocks returned to the parent
    std::uint32_t pad;
  };
  static constexpr std::uint32_t kBasicMagic = 0x8A51Cu;
  static constexpr std::uint32_t kSuperMagic = 0x50B10Cu;
  static constexpr std::uint32_t kLargeClass = 0xFFFFFFFFu;

  [[nodiscard]] std::size_t class_payload(std::size_t c) const {
    return cfg_.class_base << c;
  }
  [[nodiscard]] std::size_t basic_bytes(std::size_t c) const {
    return sizeof(BasicHeader) + class_payload(c);
  }
  [[nodiscard]] std::size_t super_bytes(std::size_t c) const {
    return sizeof(SuperHeader) + cfg_.blocks_per_super * basic_bytes(c);
  }

  void* take_from_superblock(gpu::ThreadCtx& ctx, std::uint32_t sb_unit,
                             std::uint32_t cls);
  void* malloc_small(gpu::ThreadCtx& ctx, std::uint32_t cls);
  void* malloc_large(gpu::ThreadCtx& ctx, std::size_t size);

  Config cfg_;
  alloc_core::SizeClassMap classes_;  ///< this instance's payload ladder
  std::uint32_t full_mask_ = 0;       ///< all blocks_per_super bits set
  ListHeap heap_;
  std::vector<BoundedTicketQueue> fifo1_;
  std::vector<BoundedTicketQueue> fifo2_;
  std::byte* pool_base_ = nullptr;  // == heap pool base, for unit math
};

}  // namespace gms::alloc
