#include "allocators/bulk_alloc.h"

#include <bit>

#include "alloc_core/sub_arena.h"

namespace gms::alloc {

// ---------------------------------------------------------------------------
// TreeBuddy
// ---------------------------------------------------------------------------

void TreeBuddy::init_host(std::byte* region, unsigned levels,
                          std::size_t leaf_bytes, std::uint32_t* node_words,
                          std::uint8_t* leaf_tags) {
  region_ = region;
  levels_ = levels;
  leaf_bytes_ = leaf_bytes;
  nodes_ = node_words;
  leaf_tags_ = leaf_tags;
  const std::size_t node_count = std::size_t{2} << levels;
  for (std::size_t i = 0; i < node_count; ++i) nodes_[i] = 0;
  nodes_[1] = make_node(kFree, static_cast<int>(levels));
  for (std::size_t l = 0; l < (std::size_t{1} << levels); ++l) {
    leaf_tags_[l] = 0;
  }
}

unsigned TreeBuddy::node_order(std::size_t node) const {
  return levels_ - (static_cast<unsigned>(std::bit_width(node)) - 1);
}

unsigned TreeBuddy::order_for(std::size_t bytes) const {
  const std::size_t leaves = (bytes + leaf_bytes_ - 1) / leaf_bytes_;
  return static_cast<unsigned>(
      std::bit_width(std::bit_ceil(std::max<std::size_t>(leaves, 1))) - 1);
}

std::uint32_t TreeBuddy::lock_node(gpu::ThreadCtx& ctx, std::size_t node) {
  for (;;) {
    const std::uint32_t seen = ctx.atomic_load(&nodes_[node]);
    if ((seen & kLock) == 0 &&
        ctx.atomic_cas(&nodes_[node], seen, seen | kLock) == seen) {
      return seen;
    }
    ctx.backoff();
  }
}

void TreeBuddy::store_node(gpu::ThreadCtx& ctx, std::size_t node,
                           std::uint32_t state, int max_free) {
  ctx.atomic_store(&nodes_[node], make_node(state, max_free));
}

void TreeBuddy::propagate(gpu::ThreadCtx& ctx, std::size_t node) {
  // Node-to-parent status propagation, locking the parent while it is
  // recomputed (§2.9: "both node and parent are locked").
  for (std::size_t p = node / 2; p >= 1; p /= 2) {
    const std::uint32_t w = lock_node(ctx, p);
    if (node_state(w) != kSplit) {
      ctx.atomic_store(&nodes_[p], w);  // unlock unchanged
      return;
    }
    const int mf = std::max(
        node_max_free(ctx.atomic_load(&nodes_[2 * p]) & ~kLock),
        node_max_free(ctx.atomic_load(&nodes_[2 * p + 1]) & ~kLock));
    if (mf == node_max_free(w)) {
      ctx.atomic_store(&nodes_[p], w);
      return;  // hint already accurate: stop early
    }
    store_node(ctx, p, kSplit, mf);
    if (p == 1) return;
  }
}

void* TreeBuddy::malloc_order(gpu::ThreadCtx& ctx, unsigned order) {
  if (order > levels_) return nullptr;
  const int want = static_cast<int>(order);
  // Restarts happen under lock contention and stale hints; only the root
  // hint decides genuine exhaustion. The bound is a backstop, not a budget.
  for (unsigned restarts = 0; restarts < 65536; ++restarts) {
    std::size_t node = 1;
    for (;;) {
      const std::uint32_t w = lock_node(ctx, node);
      const unsigned ord = node_order(node);
      const std::uint32_t st = node_state(w);
      if (node_max_free(w) < want || st == kBusy) {
        ctx.atomic_store(&nodes_[node], w);  // unlock, restart from the root
        break;
      }
      if (st == kFree && ord == order) {
        store_node(ctx, node, kBusy, -1);
        propagate(ctx, node);
        const std::size_t first_leaf =
            (node - (std::size_t{1} << (levels_ - ord))) << ord;
        ctx.atomic_store(&leaf_tags_[first_leaf],
                         static_cast<std::uint8_t>(order + 1));
        return region_ + first_leaf * leaf_bytes_;
      }
      if (st == kFree) {
        // Split: publish FREE children while the parent is still locked.
        store_node(ctx, 2 * node, kFree, static_cast<int>(ord) - 1);
        store_node(ctx, 2 * node + 1, kFree, static_cast<int>(ord) - 1);
        store_node(ctx, node, kSplit, static_cast<int>(ord) - 1);
        node = 2 * node;
        continue;
      }
      // kSplit: descend into a child whose hint can satisfy us.
      const std::uint32_t lw = ctx.atomic_load(&nodes_[2 * node]) & ~kLock;
      const std::uint32_t rw = ctx.atomic_load(&nodes_[2 * node + 1]) & ~kLock;
      std::size_t next = 0;
      if (node_max_free(lw) >= want) {
        next = 2 * node;
      } else if (node_max_free(rw) >= want) {
        next = 2 * node + 1;
      }
      if (next == 0) {
        // Stale hint: correct it and restart.
        store_node(ctx, node, kSplit,
                   std::max(node_max_free(lw), node_max_free(rw)));
        break;
      }
      ctx.atomic_store(&nodes_[node], w);  // unlock before descending
      node = next;
    }
    // Genuine exhaustion: the root hint says nothing fits.
    const std::uint32_t root = ctx.atomic_load(&nodes_[1]) & ~kLock;
    if (node_max_free(root) < want) return nullptr;
    ctx.backoff();
  }
  return nullptr;
}

void TreeBuddy::free_block(gpu::ThreadCtx& ctx, void* ptr, unsigned order) {
  const std::size_t first_leaf =
      static_cast<std::size_t>(static_cast<std::byte*>(ptr) - region_) /
      leaf_bytes_;
  std::size_t node =
      (std::size_t{1} << (levels_ - order)) + (first_leaf >> order);
  ctx.atomic_store(&leaf_tags_[first_leaf], std::uint8_t{0});
  lock_node(ctx, node);
  store_node(ctx, node, kFree, static_cast<int>(order));

  // Merge with the buddy while possible. Lock order parent -> children
  // (ascending indices) keeps merges deadlock-free against each other.
  while (node > 1) {
    const std::size_t parent = node / 2;
    const std::uint32_t pw = lock_node(ctx, parent);
    if (node_state(pw) != kSplit) {  // defensive: should not happen
      ctx.atomic_store(&nodes_[parent], pw);
      break;
    }
    const std::size_t left = 2 * parent;
    const std::uint32_t lw = lock_node(ctx, left);
    const std::uint32_t rw = lock_node(ctx, left + 1);
    const unsigned child_order = node_order(left);
    const bool both_whole =
        node_state(lw) == kFree &&
        node_max_free(lw) == static_cast<int>(child_order) &&
        node_state(rw) == kFree &&
        node_max_free(rw) == static_cast<int>(child_order);
    if (!both_whole) {
      // Unlock children unchanged, refresh the parent hint, stop.
      ctx.atomic_store(&nodes_[left], lw);
      ctx.atomic_store(&nodes_[left + 1], rw);
      store_node(ctx, parent, kSplit,
                 std::max(node_max_free(lw), node_max_free(rw)));
      node = parent;
      break;
    }
    // Children become unreachable once the parent is FREE.
    ctx.atomic_store(&nodes_[left], make_node(kFree, -1));
    ctx.atomic_store(&nodes_[left + 1], make_node(kFree, -1));
    store_node(ctx, parent, kFree, static_cast<int>(child_order) + 1);
    node = parent;
  }
  propagate(ctx, node);
}

void TreeBuddy::set_leaf_tag(gpu::ThreadCtx& ctx, const void* block,
                             std::uint8_t tag) {
  const std::size_t leaf =
      static_cast<std::size_t>(static_cast<const std::byte*>(block) -
                               region_) /
      leaf_bytes_;
  ctx.atomic_store(&leaf_tags_[leaf], tag);
}

std::uint8_t TreeBuddy::leaf_tag(gpu::ThreadCtx& ctx, const void* block) {
  const std::size_t leaf =
      static_cast<std::size_t>(static_cast<const std::byte*>(block) -
                               region_) /
      leaf_bytes_;
  return ctx.atomic_load(&leaf_tags_[leaf]);
}

void TreeBuddy::free_ptr(gpu::ThreadCtx& ctx, void* ptr) {
  const std::uint8_t tag = leaf_tag(ctx, ptr);
  assert(tag != 0 && tag != kChunkTag && "free of an untagged buddy block");
  free_block(ctx, ptr, static_cast<unsigned>(tag - 1));
}

unsigned TreeBuddy::root_max_free(gpu::ThreadCtx& ctx) {
  const int mf = node_max_free(ctx.atomic_load(&nodes_[1]) & ~kLock);
  return mf < 0 ? 0 : static_cast<unsigned>(mf);
}

// ---------------------------------------------------------------------------
// BulkAlloc
// ---------------------------------------------------------------------------

namespace {
constexpr core::AllocatorTraits kTraits{
    .name = "BulkAlloc",
    .family = "BulkAllocator",
    .paper_ref = "[7], PPoPP 2019 (extension: no public version exists)",
    .year = 2019,
    .general_purpose = true,
    .supports_free = true,
    .individual_free = true,
    .its_safe = true,  // built for Volta+ ("> 7.0" in Table 1)
    .stable = true,
    .extension = true,
    .malloc_state_bytes = 48,
    .free_state_bytes = 28,
};
}  // namespace

const core::ConfigSchema<BulkAlloc::Config>& BulkAlloc::config_schema() {
  using core::Pow2;
  static const auto schema = [] {
    core::ConfigSchema<Config> s;
    s.u64("chunk_bytes", &Config::chunk_bytes, 1u << 16, 1u << 22, Pow2::kYes,
          {1u << 18, 1u << 19, 1u << 20})
        .u64("bin_bytes", &Config::bin_bytes, 256, 4096, Pow2::kYes,
             {1024, 2048, 4096})
        .u64("bins_queue_capacity", &Config::bins_queue_capacity, 256,
             1u << 16, Pow2::kYes, {1024, 4096, 16384})
        .u64("num_classes", &Config::num_classes, 1,
             alloc_core::SizeClassMap::kMaxClasses, Pow2::kNo, {6, 8, 10})
        .check([](const Config& c) {
          // BinMeta's 4-word bitmap caps a bin at 256 slots.
          if (c.bin_bytes / class_bytes(0) > 256) {
            throw core::ConfigError(
                core::ConfigError::Kind::kOutOfRange, "bin_bytes",
                "config field 'bin_bytes': exceeds the 256-slot bin bitmap");
          }
          if (class_bytes(c.num_classes - 1) > c.bin_bytes) {
            throw core::ConfigError(
                core::ConfigError::Kind::kOutOfRange, "num_classes",
                "config field 'num_classes': top class exceeds bin_bytes");
          }
          // Per-chunk metadata (header + one BinMeta per bin) must fit the
          // chunk's two reserved metadata bins.
          const std::size_t bins = c.chunk_bytes / c.bin_bytes;
          if (sizeof(ChunkHeader) + bins * sizeof(BinMeta) >
              2 * c.bin_bytes) {
            throw core::ConfigError(
                core::ConfigError::Kind::kOutOfRange, "chunk_bytes",
                "config field 'chunk_bytes': bin metadata overflows the two "
                "reserved metadata bins");
          }
        });
    return s;
  }();
  return schema;
}

BulkAlloc::BulkAlloc(gpu::Device& dev, std::size_t heap_bytes, Config cfg)
    : cfg_(cfg),
      classes_(alloc_core::SizeClassMap::geometric(
          16, static_cast<unsigned>(cfg.num_classes))) {
  core::Stopwatch timer;
  num_sms_ = dev.config().num_sms;
  heap_base_ = dev.arena().data();
  alloc_core::SubArena carver(dev, heap_bytes);

  sem_words_ = carver.take<std::uint64_t>(num_sms_ * cfg_.num_classes,
                                          alignof(std::uint64_t),
                                          "semaphores");
  for (std::size_t i = 0; i < num_sms_ * cfg_.num_classes; ++i) sem_words_[i] = 0;
  arena_chunk_ = carver.take<std::byte*>(num_sms_, alignof(std::byte*),
                                         "arena-chunks");
  arena_lock_ = carver.take<std::uint32_t>(num_sms_, alignof(std::uint32_t),
                                           "arena-locks");
  for (unsigned s = 0; s < num_sms_; ++s) {
    arena_chunk_[s] = nullptr;
    arena_lock_[s] = 0;
  }
  bin_queues_.reserve(num_sms_ * cfg_.num_classes);
  for (std::size_t q = 0; q < num_sms_ * cfg_.num_classes; ++q) {
    auto* words = carver.take<std::uint64_t>(
        BoundedTicketQueue::layout_words(cfg_.bins_queue_capacity),
        alignof(std::uint64_t), "bin-queues");
    bin_queues_.emplace_back(words, cfg_.bins_queue_capacity);
    bin_queues_.back().init_host();
  }

  // Cover the rest with a forest of buddy trees, largest first, so a
  // non-power-of-two heap is not half wasted.
  std::size_t rest = 0;
  auto* region = carver.take_rest(rest, 4096, "buddy-forest");
  const std::size_t leaf = cfg_.bin_bytes;  // 4 KiB leaves
  while (rest >= cfg_.chunk_bytes && forest_.size() < 12) {
    unsigned levels = 0;
    while ((leaf << (levels + 1)) <= rest) ++levels;
    const std::size_t tree_bytes = leaf << levels;
    const std::size_t leaves = std::size_t{1} << levels;
    // Tree metadata lives at the carver, taken from the remaining budget.
    const std::size_t meta_bytes =
        TreeBuddy::meta_words(levels) * sizeof(std::uint32_t) + leaves;
    if (tree_bytes + meta_bytes > rest) {
      --levels;
      if (leaf << levels < cfg_.chunk_bytes) break;
    }
    const std::size_t final_bytes = leaf << levels;
    auto* nodes = reinterpret_cast<std::uint32_t*>(region);
    auto* tags = reinterpret_cast<std::uint8_t*>(
        nodes + TreeBuddy::meta_words(levels));
    auto* data = region + core::round_up(
        TreeBuddy::meta_words(levels) * sizeof(std::uint32_t) +
            (std::size_t{1} << levels),
        4096);
    const std::size_t consumed =
        static_cast<std::size_t>(data - region) + final_bytes;
    if (consumed > rest) break;
    forest_.emplace_back();
    forest_.back().init_host(data, levels, leaf, nodes, tags);
    region += consumed;
    rest -= consumed;
  }
  init_ms_ = timer.elapsed_ms();
}

const core::AllocatorTraits& BulkAlloc::traits() const { return kTraits; }

const alloc_core::SizeClassMap& BulkAlloc::bin_classes() {
  static const alloc_core::SizeClassMap map =
      alloc_core::SizeClassMap::geometric(16, kNumClasses);
  return map;
}

void* BulkAlloc::forest_malloc(gpu::ThreadCtx& ctx, std::size_t bytes) {
  for (auto& tree : forest_) {
    if (void* p = tree.malloc_order(ctx, tree.order_for(bytes))) return p;
  }
  return nullptr;
}

TreeBuddy* BulkAlloc::forest_tree_of(const void* p) {
  for (auto& tree : forest_) {
    if (tree.contains(p)) return &tree;
  }
  return nullptr;
}

BulkAlloc::BinMeta* BulkAlloc::bin_meta(std::byte* chunk,
                                        std::uint32_t bin) const {
  auto* metas = reinterpret_cast<BinMeta*>(chunk + sizeof(ChunkHeader));
  return &metas[bin];
}

std::uint64_t BulkAlloc::refill_bin(gpu::ThreadCtx& ctx, unsigned sm,
                                    std::size_t cls) {
  DeviceLockGuard guard(DeviceSpinLock{&arena_lock_[sm]}, ctx);
  const auto bins_per_chunk =
      static_cast<std::uint32_t>(cfg_.chunk_bytes / cfg_.bin_bytes);
  std::byte* chunk = arena_chunk_[sm];
  auto* header = reinterpret_cast<ChunkHeader*>(chunk);
  if (chunk == nullptr || header->next_fresh_bin >= bins_per_chunk) {
    auto* fresh = static_cast<std::byte*>(
        forest_malloc(ctx, cfg_.chunk_bytes));
    if (fresh == nullptr) return 0;
    forest_tree_of(fresh)->set_leaf_tag(ctx, fresh, TreeBuddy::kChunkTag);
    auto* fh = reinterpret_cast<ChunkHeader*>(fresh);
    fh->magic = kChunkMagic;
    fh->next_fresh_bin = 2;  // bins 0-1 hold the chunk's allocation state
    arena_chunk_[sm] = fresh;
    chunk = fresh;
    header = fh;
  }
  const std::uint32_t bin = header->next_fresh_bin++;
  BinMeta* meta = bin_meta(chunk, bin);
  const std::uint32_t cap = slots_per_bin(cls);
  meta->cls_plus1 = static_cast<std::uint32_t>(cls) + 1;
  meta->owner_sm = sm;
  meta->used = 0;
  meta->enqueued = 0;
  for (unsigned w = 0; w < 4; ++w) {
    std::uint64_t invalid = ~std::uint64_t{0};
    if (w * 64 < cap) {
      const std::uint32_t valid =
          std::min<std::uint32_t>(64, cap - w * 64);
      invalid = valid == 64 ? 0 : ~((std::uint64_t{1} << valid) - 1);
    }
    meta->bitmap[w] = invalid;
  }
  const std::uint64_t code =
      static_cast<std::uint64_t>(chunk + bin * cfg_.bin_bytes - heap_base_);
  meta->enqueued = 1;  // the fresh bin enters the queue with its hint flag set
  // A ticket queue reports a transient "full" while a dequeuer is mid-slot
  // recycle; that must not masquerade as out-of-memory.
  for (unsigned tries = 0; tries < 256; ++tries) {
    if (bin_queues_[sm * cfg_.num_classes + cls].try_enqueue(ctx, code)) {
      return cap;
    }
    ctx.backoff();
  }
  meta->enqueued = 0;
  return 0;  // genuinely full hint queue: treat as exhausted
}

void* BulkAlloc::malloc_small(gpu::ThreadCtx& ctx, std::size_t cls) {
  const unsigned sm = ctx.smid() % num_sms_;
  BulkSemaphore sem(&sem_words_[sm * cfg_.num_classes + cls]);
  // acquire_or_refill can fail for two reasons: the upstream is exhausted
  // (refill added nothing — a real OOM) or the waiter timed out behind a
  // slow in-flight refill. Only the former is terminal.
  bool upstream_empty = false;
  for (;;) {
    if (sem.acquire_or_refill(ctx, 1, [&] {
          const std::uint64_t added = refill_bin(ctx, sm, cls);
          if (added == 0) upstream_empty = true;
          return added;
        })) {
      break;
    }
    if (upstream_empty) return nullptr;
    ctx.backoff();
  }
  auto& queue = bin_queues_[sm * cfg_.num_classes + cls];
  const std::uint32_t cap = slots_per_bin(cls);
  for (;;) {
    std::uint64_t code = 0;
    if (!queue.try_dequeue(ctx, code)) {
      // Our reservation's bin hint is held by a concurrent claimer and will
      // reappear; spin politely.
      ctx.backoff();
      continue;
    }
    auto* bin_ptr = heap_base_ + code;
    TreeBuddy* tree = forest_tree_of(bin_ptr);
    auto* chunk = tree->region() +
                  (static_cast<std::size_t>(bin_ptr - tree->region()) /
                   cfg_.chunk_bytes) *
                      cfg_.chunk_bytes;
    const auto bin = static_cast<std::uint32_t>(
        static_cast<std::size_t>(bin_ptr - chunk) / cfg_.bin_bytes);
    BinMeta* meta = bin_meta(chunk, bin);
    if (ctx.atomic_load(&meta->cls_plus1) != cls + 1) continue;  // stale hint
    // We now own this bin's (single) hint; clear the flag before deciding
    // whether to re-publish so a racing free can re-arm it.
    ctx.atomic_store(&meta->enqueued, 0u);
    for (unsigned w = 0; w < 4 && w * 64 < cap; ++w) {
      const std::uint64_t seen = ctx.atomic_load(&meta->bitmap[w]);
      const std::uint64_t free_bits = ~seen;
      if (free_bits == 0) continue;
      const unsigned bit = static_cast<unsigned>(std::countr_zero(free_bits));
      if ((ctx.atomic_or(&meta->bitmap[w], std::uint64_t{1} << bit) &
           (std::uint64_t{1} << bit)) != 0) {
        --w;  // lost the bit race: rescan this word
        continue;
      }
      ctx.atomic_add(&meta->used, 1u);
      // Re-advertise the bin if it still has room — but keep the invariant
      // of at most one hint per bin (the enqueued flag arbitrates with
      // racing frees; unbounded duplicate hints would fill the queue and
      // read as out-of-memory).
      std::uint64_t remaining = 0;
      for (unsigned v = 0; v < 4; ++v) {
        remaining +=
            static_cast<std::uint64_t>(std::popcount(~ctx.atomic_load(
                &meta->bitmap[v])));
      }
      if (remaining > 0 &&
          ctx.atomic_cas(&meta->enqueued, 0u, 1u) == 0u) {
        if (!queue.try_enqueue(ctx, code)) {
          ctx.atomic_store(&meta->enqueued, 0u);
          // Hint dropped: stop accounting the stranded slots.
          for (std::uint64_t r = 0; r < remaining; ++r) {
            if (!sem.try_acquire(ctx, 1)) break;
          }
        }
      }
      return bin_ptr + std::size_t{w * 64 + bit} * class_bytes(cls);
    }
    // No free bit (raced away): drop the hint and look again.
  }
}

void BulkAlloc::free_small(gpu::ThreadCtx& ctx, std::byte* chunk,
                           std::size_t off) {
  const auto bin = static_cast<std::uint32_t>(off / cfg_.bin_bytes);
  BinMeta* meta = bin_meta(chunk, bin);
  const std::size_t cls = ctx.atomic_load(&meta->cls_plus1) - 1;
  const std::size_t slot = (off % cfg_.bin_bytes) / class_bytes(cls);
  ctx.atomic_and(&meta->bitmap[slot / 64],
                 ~(std::uint64_t{1} << (slot % 64)));
  ctx.atomic_sub(&meta->used, 1u);
  const unsigned sm = ctx.atomic_load(&meta->owner_sm);
  const std::uint64_t code = static_cast<std::uint64_t>(
      chunk + bin * cfg_.bin_bytes - heap_base_);
  // Publish at most one hint per bin; if one is already queued (or a racing
  // malloc just re-armed it), the freed slot is reachable through it.
  if (ctx.atomic_cas(&meta->enqueued, 0u, 1u) == 0u) {
    if (!bin_queues_[sm * cfg_.num_classes + cls].try_enqueue(ctx, code)) {
      ctx.atomic_store(&meta->enqueued, 0u);
      return;  // slot stranded unaccounted (queue overflow; bounded)
    }
  }
  BulkSemaphore(&sem_words_[sm * cfg_.num_classes + cls]).release(ctx, 1);
}

void* BulkAlloc::malloc(gpu::ThreadCtx& ctx, std::size_t size) {
  if (size == 0) size = 1;
  if (size < classes_.max_bytes()) {
    // < not <=: a full top-class request (2 KiB by default) goes to the
    // buddy forest, so the class_for result is always a real class here.
    return malloc_small(ctx, classes_.class_for(size));
  }
  return forest_malloc(ctx, size);
}

void BulkAlloc::free(gpu::ThreadCtx& ctx, void* ptr) {
  if (ptr == nullptr) return;
  TreeBuddy* tree = forest_tree_of(ptr);
  assert(tree != nullptr && "free of a foreign pointer");
  // Chunk-interior pointers belong to UAlloc; block starts tagged with an
  // order belong to the buddy. The leaf tag array is authoritative.
  auto* p = static_cast<std::byte*>(ptr);
  const std::size_t rel = static_cast<std::size_t>(p - tree->region());
  auto* chunk = tree->region() + rel / cfg_.chunk_bytes * cfg_.chunk_bytes;
  if (tree->leaf_tag(ctx, chunk) == TreeBuddy::kChunkTag) {
    free_small(ctx, chunk, static_cast<std::size_t>(p - chunk));
    return;
  }
  tree->free_ptr(ctx, ptr);
}

}  // namespace gms::alloc
