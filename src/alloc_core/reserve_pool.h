#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "alloc_core/size_class_map.h"
#include "core/memory_manager.h"
#include "gpu/thread_ctx.h"

namespace gms::alloc_core {

/// Last-resort segregated pool backing the ResilientManager's fallback path:
/// a slice carved off the tail of the wrapped manager's heap, handed out
/// only after the inner allocator has failed its whole retry budget.
///
/// Design constraints, in order:
///  * *well-defined failure handling* — every block carries a 16-byte header
///    whose state word is a CAS-guarded live/free machine, so a double free
///    on a reserve pointer is detected and absorbed (counted, never
///    corrupting) and free() of a pointer that is in range but not a block
///    start is rejected rather than interpreted;
///  * *deterministic exhaustion ordering* — malloc first pops the request's
///    size-class LIFO free list, then bump-carves fresh space, then fails;
///    the bump cursor never rewinds, so once carving space is gone only
///    recycled blocks can serve and the failure point is reproducible;
///  * *no instrumentation pollution* — bookkeeping uses plain std::atomic /
///    std::atomic_ref (the ValidatingManager convention), so the recovery
///    path does not inflate the inner allocator's contention counters.
///
/// Requests above the largest class (512 KiB) are not served: the reserve is
/// an emergency ration, not a second general-purpose heap.
class ReservePool {
 public:
  enum class FreeResult : std::uint8_t {
    kFreed,       ///< block returned to its class list
    kDoubleFree,  ///< state word was already kFree — absorbed
    kInvalid,     ///< in range but no valid block header at ptr - 16
  };

  static constexpr std::size_t kHeaderBytes = 16;

  ReservePool(std::byte* base, std::size_t bytes);

  /// nullptr when the request exceeds the class ladder or the pool is
  /// exhausted (both counted separately).
  [[nodiscard]] void* malloc(gpu::ThreadCtx& ctx, std::size_t size);
  FreeResult free(gpu::ThreadCtx& ctx, void* ptr);

  [[nodiscard]] bool owns(const void* p) const {
    const auto* b = static_cast<const std::byte*>(p);
    return b >= base_ && b < base_ + bytes_;
  }
  [[nodiscard]] std::uint64_t offset_of(const void* p) const {
    return static_cast<std::uint64_t>(static_cast<const std::byte*>(p) -
                                      base_);
  }

  [[nodiscard]] std::size_t capacity() const { return bytes_; }
  [[nodiscard]] std::uint64_t used_bytes() const {
    return high_water_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rejected_large() const {
    return rejected_large_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t double_frees() const {
    return double_frees_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t invalid_frees() const {
    return invalid_frees_.load(std::memory_order_relaxed);
  }

  /// Walks every carved block header (they are contiguous under the bump
  /// cursor): magic intact, state either live or free, class in range.
  [[nodiscard]] core::AuditResult audit() const;

 private:
  struct Header {
    std::uint32_t magic;
    std::uint32_t state;  ///< kLive / kFree, CASed by free()
    std::uint32_t cls;    ///< size-class index
    std::uint32_t pad;
  };
  static_assert(sizeof(Header) == kHeaderBytes);

  static constexpr std::uint32_t kMagic = 0x9E5E9ED0u;  // "ReSeRveD"
  static constexpr std::uint32_t kLive = 1;
  static constexpr std::uint32_t kFree = 2;

  /// Free-list head encoding: low 48 bits hold (block offset / 16) + 1
  /// (0 = empty), high 16 bits an ABA generation tag.
  static constexpr std::uint64_t kOffMask = (std::uint64_t{1} << 48) - 1;
  static constexpr std::uint64_t kGenInc = std::uint64_t{1} << 48;

  [[nodiscard]] void* pop_free(unsigned cls);
  [[nodiscard]] void* bump_carve(unsigned cls);

  SizeClassMap classes_;
  std::byte* base_;
  std::size_t bytes_;

  std::atomic<std::uint64_t> bump_{0};
  std::atomic<std::uint64_t> high_water_{0};
  std::atomic<std::uint64_t> heads_[SizeClassMap::kMaxClasses]{};
  std::atomic<std::uint64_t> exhausted_{0};
  std::atomic<std::uint64_t> rejected_large_{0};
  std::atomic<std::uint64_t> double_frees_{0};
  std::atomic<std::uint64_t> invalid_frees_{0};
};

}  // namespace gms::alloc_core
