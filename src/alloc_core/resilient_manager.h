#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "alloc_core/reserve_pool.h"
#include "core/memory_manager.h"
#include "core/registry.h"
#include "core/resilience.h"
#include "gpu/device.h"

namespace gms::alloc_core {

/// The "+R" failure-recovery decorator: turns the wrapped manager's
/// nullptr-on-OOM into a policy-driven escalation chain (DESIGN.md §11):
///
///   1. bounded in-kernel retry — attempt k spins a deterministic per-lane
///      backoff (`backoff_base << (k-1)` rounds plus a seeded hash jitter of
///      (lane rank, attempt)) and calls the inner manager again; transient
///      failures (a free racing just behind the failed dequeue) recover here
///      with zero reserve spend;
///   2. reserve-pool fallback — a slice carved off the heap tail serves the
///      request so the kernel makes progress while the event is counted;
///   3. per-site circuit breaker — a site (size class) that fails
///      `breaker_threshold` times consecutively trips open and is parked on
///      the fallback path; every `breaker_decay`-th call half-opens the
///      breaker and probes the inner manager, closing it on success.
///
/// Every escalation step is reported through the ResilienceObserver seam;
/// when the stack also has a trace stage the StackBuilder installs a
/// recorder-backed observer, so Chrome export shows recovery traffic and
/// the canonical replay digest stays byte-identical (escalation events are
/// markers, outside the digest's allocation-event range).
///
/// Like the other decorators, bookkeeping uses plain std::atomic — the
/// inner allocator's instrumented contention counters see only real
/// allocator work. Caveat for warp-level inners (FDGMalloc): reserve blocks
/// handed out on the warp_malloc fallback path are not covered by
/// warp_free_all and leak until teardown (bounded by the reserve size,
/// visible as fallback_allocs - fallback_frees).
class ResilientManager final : public core::MemoryManager {
 public:
  ResilientManager(gpu::Device& dev, std::size_t heap_bytes,
                   const core::ManagerFactory& make_inner,
                   core::ResilienceSpec spec = {});

  [[nodiscard]] const core::AllocatorTraits& traits() const override {
    return traits_;
  }
  [[nodiscard]] void* malloc(gpu::ThreadCtx& ctx, std::size_t size) override;
  void free(gpu::ThreadCtx& ctx, void* ptr) override;
  [[nodiscard]] void* warp_malloc(gpu::ThreadCtx& ctx,
                                  std::size_t size) override;
  void warp_free_all(gpu::ThreadCtx& ctx) override;
  [[nodiscard]] core::AuditResult audit() override;

  [[nodiscard]] core::MemoryManager& inner() { return *inner_; }
  [[nodiscard]] const core::ResilienceSpec& spec() const { return spec_; }
  [[nodiscard]] ReservePool& reserve() { return reserve_; }

  /// Snapshot of the recovery counters (quiescent reads are exact; mid-run
  /// reads are a consistent-enough monotonic estimate).
  [[nodiscard]] core::ResilienceReport report() const;

  /// Installs (and owns) the escalation observer. Pass nullptr to detach.
  /// Host-side only; never swap observers while kernels run.
  void set_observer(std::unique_ptr<core::ResilienceObserver> obs) {
    observer_ = std::move(obs);
  }

  /// Twin-trait derivation from the cached base traits (no probe), the
  /// ValidatingManager/WarpAggregator pattern. The caller renames.
  static core::AllocatorTraits decorate_traits(core::AllocatorTraits t);

 private:
  /// One breaker per size-class site (last slot: larger-than-ladder).
  struct alignas(64) Site {
    std::atomic<std::uint32_t> consecutive{0};
    std::atomic<std::uint32_t> open{0};
    std::atomic<std::uint64_t> served_open{0};
  };
  static constexpr unsigned kSites = SizeClassMap::kMaxClasses + 1;

  [[nodiscard]] unsigned site_for(std::size_t size) const;
  void spin_backoff(gpu::ThreadCtx& ctx, unsigned attempt, bool per_lane);
  void observe(gpu::ThreadCtx& ctx, core::EscalationKind kind,
               std::uint64_t size, std::uint64_t detail);
  /// The shared malloc/warp_malloc escalation chain.
  [[nodiscard]] void* recovering_malloc(gpu::ThreadCtx& ctx, std::size_t size,
                                        bool warp);
  [[nodiscard]] void* fallback(gpu::ThreadCtx& ctx, std::size_t size);

  core::ResilienceSpec spec_;
  std::size_t inner_heap_bytes_;
  ReservePool reserve_;
  std::unique_ptr<core::MemoryManager> inner_;
  std::unique_ptr<core::ResilienceObserver> observer_;
  std::string name_;
  core::AllocatorTraits traits_;
  SizeClassMap sites_map_;

  std::unique_ptr<Site[]> sites_;
  std::atomic<std::uint64_t> inner_failures_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> retry_successes_{0};
  std::atomic<std::uint64_t> fallback_allocs_{0};
  std::atomic<std::uint64_t> fallback_frees_{0};
  std::atomic<std::uint64_t> breaker_trips_{0};
  std::atomic<std::uint64_t> breaker_resets_{0};
  std::atomic<std::uint64_t> breaker_served_{0};
  std::atomic<std::uint64_t> unrecovered_{0};
};

}  // namespace gms::alloc_core
