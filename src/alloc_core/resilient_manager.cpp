#include "alloc_core/resilient_manager.h"

#include <algorithm>
#include <cassert>

#include "core/utils.h"

namespace gms::alloc_core {

namespace {

/// Tail slice handed to the ReservePool: spec percent of the heap, at least
/// 64 KiB so even probe-sized heaps get a workable emergency ration.
std::size_t reserve_slice(std::size_t heap_bytes,
                          const core::ResilienceSpec& spec) {
  std::size_t r = heap_bytes / 100 * spec.reserve_percent;
  r = std::max<std::size_t>(r, std::size_t{64} * 1024);
  return core::round_up(r, 64);
}

}  // namespace

ResilientManager::ResilientManager(gpu::Device& dev, std::size_t heap_bytes,
                                   const core::ManagerFactory& make_inner,
                                   core::ResilienceSpec spec)
    : spec_(spec),
      inner_heap_bytes_((heap_bytes - reserve_slice(heap_bytes, spec)) &
                        ~std::size_t{63}),
      reserve_(dev.arena().data() + inner_heap_bytes_,
               heap_bytes - inner_heap_bytes_),
      sites_(std::make_unique<Site[]>(kSites)) {
  assert(heap_bytes > 2 * reserve_slice(heap_bytes, spec) &&
         "heap too small for a resilient twin");
  const core::Stopwatch sw;
  sites_map_ = SizeClassMap::geometric(SizeClassMap::kGranule,
                                       SizeClassMap::kMaxClasses);
  inner_ = make_inner(dev, inner_heap_bytes_);
  name_ = std::string(inner_->traits().name) + "+R";
  traits_ = decorate_traits(inner_->traits());
  traits_.name = name_;
  init_ms_ = sw.elapsed_ms();
}

core::AllocatorTraits ResilientManager::decorate_traits(
    core::AllocatorTraits t) {
  t.decorated = true;
  // The escalation chain adds a handful of locals to the hot path only when
  // the inner manager has already failed; the happy path carries the site
  // lookup and one relaxed breaker load.
  t.malloc_state_bytes += 24;
  t.free_state_bytes += 8;
  return t;
}

unsigned ResilientManager::site_for(std::size_t size) const {
  const unsigned cls = sites_map_.class_for(SizeClassMap::round16(
      size == 0 ? std::size_t{1} : size));
  return cls == SizeClassMap::kNoClass ? kSites - 1 : cls;
}

void ResilientManager::spin_backoff(gpu::ThreadCtx& ctx, unsigned attempt,
                                    bool per_lane) {
  // Exponential in the attempt plus a seeded per-lane jitter, so a
  // thundering herd of failed lanes de-synchronises deterministically.
  // Warp-cooperative paths use a lane-independent jitter to keep the
  // coalesced group together across the retry.
  const std::uint64_t salt = per_lane ? ctx.thread_rank() : 0x5A17;
  core::SplitMix64 rng(spec_.seed ^ (salt << 20) ^ attempt);
  std::uint64_t rounds = (std::uint64_t{spec_.backoff_base} << (attempt - 1)) +
                         rng.range(0, spec_.backoff_base - 1);
  for (; rounds > 0; --rounds) ctx.backoff();
}

void ResilientManager::observe(gpu::ThreadCtx& ctx, core::EscalationKind kind,
                               std::uint64_t size, std::uint64_t detail) {
  if (observer_ != nullptr) observer_->on_escalation(ctx, kind, size, detail);
}

void* ResilientManager::fallback(gpu::ThreadCtx& ctx, std::size_t size) {
  void* p = reserve_.malloc(ctx, size);
  if (p != nullptr) {
    fallback_allocs_.fetch_add(1, std::memory_order_relaxed);
    observe(ctx, core::EscalationKind::kFallbackAlloc, size,
            inner_heap_bytes_ + reserve_.offset_of(p));
  }
  return p;
}

void* ResilientManager::recovering_malloc(gpu::ThreadCtx& ctx,
                                          std::size_t size, bool warp) {
  Site& s = sites_[site_for(size)];

  if (s.open.load(std::memory_order_relaxed) != 0) {
    const std::uint64_t n =
        s.served_open.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n % spec_.breaker_decay != 0) {
      breaker_served_.fetch_add(1, std::memory_order_relaxed);
      if (void* p = fallback(ctx, size)) return p;
      // Reserve dry while parked: fall through and probe the inner manager
      // anyway — shedding to an empty pool would manufacture failures.
    }
    // Every breaker_decay-th call half-opens: probe the inner manager below.
  }

  void* p = warp ? inner_->warp_malloc(ctx, size) : inner_->malloc(ctx, size);
  if (p == nullptr) inner_failures_.fetch_add(1, std::memory_order_relaxed);
  unsigned attempt = 0;
  while (p == nullptr && attempt < spec_.retries) {
    ++attempt;
    retries_.fetch_add(1, std::memory_order_relaxed);
    spin_backoff(ctx, attempt, /*per_lane=*/!warp);
    p = warp ? inner_->warp_malloc(ctx, size) : inner_->malloc(ctx, size);
  }

  if (p != nullptr) {
    if (attempt > 0) {
      retry_successes_.fetch_add(1, std::memory_order_relaxed);
      observe(ctx, core::EscalationKind::kRetrySuccess, size, attempt);
    }
    s.consecutive.store(0, std::memory_order_relaxed);
    if (s.open.load(std::memory_order_relaxed) != 0 &&
        s.open.exchange(0, std::memory_order_acq_rel) != 0) {
      breaker_resets_.fetch_add(1, std::memory_order_relaxed);
      observe(ctx, core::EscalationKind::kBreakerReset, size, 0);
    }
    return p;
  }

  const std::uint32_t consec =
      s.consecutive.fetch_add(1, std::memory_order_relaxed) + 1;
  if (consec >= spec_.breaker_threshold &&
      s.open.exchange(1, std::memory_order_acq_rel) == 0) {
    s.served_open.store(0, std::memory_order_relaxed);
    breaker_trips_.fetch_add(1, std::memory_order_relaxed);
    observe(ctx, core::EscalationKind::kBreakerTrip, size, consec);
  }

  if (void* fp = fallback(ctx, size)) return fp;
  unrecovered_.fetch_add(1, std::memory_order_relaxed);
  observe(ctx, core::EscalationKind::kUnrecovered, size, 0);
  return nullptr;
}

void* ResilientManager::malloc(gpu::ThreadCtx& ctx, std::size_t size) {
  return recovering_malloc(ctx, size, /*warp=*/false);
}

void* ResilientManager::warp_malloc(gpu::ThreadCtx& ctx, std::size_t size) {
  return recovering_malloc(ctx, size, /*warp=*/true);
}

void ResilientManager::free(gpu::ThreadCtx& ctx, void* ptr) {
  if (ptr == nullptr) return;  // well-defined no-op at this layer, always
  if (reserve_.owns(ptr)) {
    if (reserve_.free(ctx, ptr) == ReservePool::FreeResult::kFreed) {
      fallback_frees_.fetch_add(1, std::memory_order_relaxed);
      observe(ctx, core::EscalationKind::kFallbackFree, 0,
              inner_heap_bytes_ + reserve_.offset_of(ptr));
    }
    // Double / invalid frees on reserve pointers are absorbed and counted
    // by the pool; they must never reach the inner manager, whose heap has
    // no idea these addresses exist.
    return;
  }
  inner_->free(ctx, ptr);
}

void ResilientManager::warp_free_all(gpu::ThreadCtx& ctx) {
  inner_->warp_free_all(ctx);
}

core::AuditResult ResilientManager::audit() {
  auto r = reserve_.audit();
  return r.merge(inner_->audit());
}

core::ResilienceReport ResilientManager::report() const {
  core::ResilienceReport r;
  r.inner_failures = inner_failures_.load(std::memory_order_relaxed);
  r.retries = retries_.load(std::memory_order_relaxed);
  r.retry_successes = retry_successes_.load(std::memory_order_relaxed);
  r.fallback_allocs = fallback_allocs_.load(std::memory_order_relaxed);
  r.fallback_frees = fallback_frees_.load(std::memory_order_relaxed);
  r.breaker_trips = breaker_trips_.load(std::memory_order_relaxed);
  r.breaker_resets = breaker_resets_.load(std::memory_order_relaxed);
  r.breaker_served = breaker_served_.load(std::memory_order_relaxed);
  r.unrecovered = unrecovered_.load(std::memory_order_relaxed);
  r.reserve_exhausted = reserve_.exhausted() + reserve_.rejected_large();
  r.reserve_double_frees = reserve_.double_frees();
  r.reserve_invalid_frees = reserve_.invalid_frees();
  r.reserve_used_bytes = reserve_.used_bytes();
  r.reserve_capacity = reserve_.capacity();
  return r;
}

}  // namespace gms::alloc_core
