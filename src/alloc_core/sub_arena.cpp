#include "alloc_core/sub_arena.h"

namespace gms::alloc_core {

namespace {

std::string human_bytes(std::size_t bytes) {
  if (bytes >= (std::size_t{1} << 20)) {
    const double mib = static_cast<double>(bytes) / (1u << 20);
    std::string s = std::to_string(mib);
    return s.substr(0, s.find('.') + 2) + "MiB";
  }
  if (bytes >= 1024) {
    const double kib = static_cast<double>(bytes) / 1024;
    std::string s = std::to_string(kib);
    return s.substr(0, s.find('.') + 2) + "KiB";
  }
  return std::to_string(bytes) + "B";
}

}  // namespace

std::string SubArena::describe() const {
  std::string out;
  for (const auto& e : extents_) {
    if (!out.empty()) out += " | ";
    out += std::string(e.label) + " " + human_bytes(e.bytes);
  }
  if (out.empty()) out = "unlabelled carve, " + human_bytes(used());
  return out;
}

}  // namespace gms::alloc_core
