#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "allocators/cuda_standin.h"
#include "gpu/thread_ctx.h"

namespace gms::alloc_core {

/// The shared large-request escape hatch (paper §2/§4: Halloc, Ouroboros and
/// FDGMalloc all forward requests above their direct-service limit to the
/// CUDA allocator). Owns the CudaStandin slice each of those managers
/// previously embedded by hand, answers `owns(ptr)` so free-side routing
/// stops duplicating base/end range checks, and counts relay traffic so the
/// survey can report how much of a workload actually bypassed the manager
/// under test.
///
/// The counters use plain std::atomic, not the instrumented ctx.atomic_*
/// wrappers: relay bookkeeping must not inflate the inner allocator's
/// measured atomics (same rule as the validating twin's own metadata).
class LargeRequestRelay {
 public:
  LargeRequestRelay() = default;  ///< disengaged: malloc fails, owns() false

  /// Engages the relay over `[base, base + bytes)` — typically the tail a
  /// SubArena::take_rest handed back. The slice layout is CudaStandin's,
  /// unchanged from the embedded-standin era (trace-replay fidelity).
  void engage(std::byte* base, std::size_t bytes) {
    base_ = base;
    bytes_ = bytes;
    standin_ = std::make_unique<alloc::CudaStandin>(base, bytes);
  }

  [[nodiscard]] bool engaged() const { return standin_ != nullptr; }
  [[nodiscard]] std::size_t bytes() const { return bytes_; }

  /// True iff `p` points into the relay's slice — the free-routing question
  /// every relaying manager used to answer with its own range arithmetic.
  [[nodiscard]] bool owns(const void* p) const {
    const auto* b = static_cast<const std::byte*>(p);
    return standin_ != nullptr && b >= base_ && b < base_ + bytes_;
  }

  void* malloc(gpu::ThreadCtx& ctx, std::size_t size) {
    if (standin_ == nullptr) return nullptr;
    void* p = standin_->malloc(ctx, size);
    if (p != nullptr) {
      relayed_mallocs_.fetch_add(1, std::memory_order_relaxed);
    } else {
      relayed_failures_.fetch_add(1, std::memory_order_relaxed);
    }
    return p;
  }

  void free(gpu::ThreadCtx& ctx, void* p) {
    if (standin_ == nullptr || p == nullptr) return;
    relayed_frees_.fetch_add(1, std::memory_order_relaxed);
    standin_->free(ctx, p);
  }

  // ---- relay-pressure counters ------------------------------------------
  [[nodiscard]] std::uint64_t relayed_mallocs() const {
    return relayed_mallocs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t relayed_frees() const {
    return relayed_frees_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t relayed_failures() const {
    return relayed_failures_.load(std::memory_order_relaxed);
  }

 private:
  std::unique_ptr<alloc::CudaStandin> standin_;
  std::byte* base_ = nullptr;
  std::size_t bytes_ = 0;
  std::atomic<std::uint64_t> relayed_mallocs_{0};
  std::atomic<std::uint64_t> relayed_frees_{0};
  std::atomic<std::uint64_t> relayed_failures_{0};
};

}  // namespace gms::alloc_core
