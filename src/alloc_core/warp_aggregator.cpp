#include "alloc_core/warp_aggregator.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <limits>

#include "alloc_core/size_class_map.h"

namespace gms::alloc_core {

namespace {

/// Broadcast sentinel distinguishing "probe round: everyone serve per-lane"
/// from nullptr "carve failed: degrade per-lane". Never a valid pointer.
std::byte* probe_sentinel() {
  return reinterpret_cast<std::byte*>(std::uintptr_t{1});
}

/// Smallest slab window worth bump-carving: below this a refill covers so
/// few groups that the cache is churn, not amortisation.
constexpr std::size_t kMinWindow = 16u * 1024;

}  // namespace

core::AllocatorTraits WarpAggregator::decorate_traits(core::AllocatorTraits t) {
  t.decorated = true;
  // Lane spans are header-free (slab descriptors live at the window base and
  // per-lane fallbacks forward requests verbatim), so unlike the validating
  // twin there is no per-allocation pad and max_direct_size is preserved.
  return t;
}

WarpAggregator::WarpAggregator(std::unique_ptr<core::MemoryManager> inner,
                               const core::WarpAggSpec& spec, gpu::Device& dev)
    : inner_(std::move(inner)), spec_(spec) {
  name_ = std::string(inner_->traits().name) + "+W";
  traits_ = decorate_traits(inner_->traits());
  traits_.name = name_;
  init_ms_ = inner_->init_ms();

  arena_lo_ = dev.arena().data();
  arena_hi_ = arena_lo_ + dev.arena().size();
  num_sms_ = dev.config().num_sms;
  sm_ = std::make_unique<SmState[]>(num_sms_);

  const auto& it = inner_->traits();
  warp_only_inner_ = it.warp_level_only;
  bulk_free_inner_ = it.bulk_free_capable && !it.individual_free;

  // Shrink the window until the inner manager can serve the 2x refill
  // request DIRECTLY (a relayed refill would live on the host heap, outside
  // the masked-descriptor lookup). Below kMinWindow, disable the slab: the
  // aggregated path then degrades to per-lane service, and the adaptive
  // policy never routes a site into it.
  window_ = std::size_t{spec_.slab_kb} * 1024;
  while (window_ > kMinWindow && 2 * window_ > it.max_direct_size) {
    window_ >>= 1;
  }
  slab_alloc_bytes_ = 2 * window_;
  payload_cap_ = window_ - kDescBytes;
  slab_enabled_ = slab_alloc_bytes_ <= it.max_direct_size;
}

unsigned WarpAggregator::site_index(std::size_t size) {
  // log2 buckets of 16-byte granules: 16B -> 1, 32B -> 2, ... clamped.
  const std::size_t granules = SizeClassMap::round16(size) >> 4;
  const auto w = static_cast<unsigned>(std::bit_width(granules));
  return std::min(w, kSites - 1);
}

WarpAggregator::SiteState& WarpAggregator::site(gpu::ThreadCtx& ctx,
                                                std::size_t size) {
  return sm_[ctx.smid()].sites[site_index(size)];
}

std::uint64_t WarpAggregator::cost_now(gpu::ThreadCtx& ctx) const {
  // The deterministic cost signal, two components summed from the per-SM
  // counters:
  //  * contention — CAS retries and polite-spin backoffs (weighted: one
  //    backoff concedes a whole fiber slice);
  //  * work — total instrumented device-memory atomics, the latency proxy.
  //    A lock can sit just below its spin-storm threshold while the inner
  //    manager's search loops (CUDA stand-in bitmap walks, ScatterAlloc
  //    hashing) grow with heap fill; those loops run through the
  //    instrumented accessors, so their length is visible here even when
  //    cas_failed is silent.
  // A delta across one inner call also includes work by the other lanes
  // this SM interleaves during the call's suspension points — which is
  // exactly the "how loaded is this SM right now" proxy we want, and it
  // stays reproducible because fiber interleaving is deterministic.
  const gpu::StatsCounters& s = ctx.stats();
  return s.atomic_total() + s.atomic_cas_failed + 4 * s.backoffs;
}

void* WarpAggregator::inner_call(gpu::ThreadCtx& ctx, std::size_t size) {
  return warp_only_inner_ ? inner_->warp_malloc(ctx, size)
                          : inner_->malloc(ctx, size);
}

void WarpAggregator::update_ema(gpu::ThreadCtx& ctx, SmState& sm,
                                SiteState& st, std::uint64_t cost,
                                std::size_t size) {
  const auto clamped =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(cost, 4096));
  const std::uint32_t sample = clamped << kEmaFrac;
  st.ema = st.ema - (st.ema >> kEmaAlphaShift) + (sample >> kEmaAlphaShift);
  sm.ema = sm.ema - (sm.ema >> kEmaAlphaShift) + (sample >> kEmaAlphaShift);
  // Arming keys on the storm's signature, not on averages: a saturated
  // spin-lock storm dumps a whole CAS-retry burst into ONE sampled delta
  // (the CUDA stand-in's storms put ~99% of their hot samples at the 4096
  // clamp), while fast managers top out an order of magnitude lower even
  // on their worst call (XMalloc's hottest sample in a million calls was
  // ~1024 — a preempted lock-free retry run). A single spike over
  // 16x enter_cost is therefore storm-grade on its own; anything softer
  // (streaks of warm samples, EMA crossings) turned out to fire on
  // preemption clustering and misroute bursty-but-fast managers.
  if (clamped >= spec_.enter_cost * kArmSpikeFactor) sm.armed = true;
  ++st.samples_since_switch;
  if (st.samples_since_switch < spec_.dwell) return;

  const std::uint32_t enter = spec_.enter_cost << kEmaFrac;
  if (!st.aggregated && slab_enabled_ && sm.armed) {
    // Inherit the strongest evidence available so the site's own probes
    // must decay it below exit_cost before the site may leave again.
    st.ema = std::max({st.ema, sm.ema, enter});
    st.aggregated = true;
    st.samples_since_switch = 0;
    st.probe_countdown = spec_.probe_every;
    ++sm.switches_to_agg;
    if (observer_ != nullptr) {
      observer_->on_agg_event(ctx, core::AggEventKind::kModeAggregated,
                              SizeClassMap::round16(size), st.ema);
    }
  } else if (st.aggregated && st.ema <= (spec_.exit_cost << kEmaFrac)) {
    st.aggregated = false;
    st.samples_since_switch = 0;
    st.sample_countdown = 1;  // re-sample immediately back on the lane path
    // Probes proved the storm is gone; drop the latch so re-entry (here or
    // on this SM's sibling sites) needs a fresh storm-grade spike.
    sm.armed = false;
    ++sm.switches_to_pass;
    if (observer_ != nullptr) {
      observer_->on_agg_event(ctx, core::AggEventKind::kModePassthrough,
                              SizeClassMap::round16(size), st.ema);
    }
  }
}

void* WarpAggregator::malloc(gpu::ThreadCtx& ctx, std::size_t size) {
  switch (spec_.policy) {
    case core::WarpAggSpec::Policy::kNever:
      return inner_call(ctx, size);
    case core::WarpAggSpec::Policy::kAlways:
      return aggregated_malloc(ctx, size, nullptr);
    case core::WarpAggSpec::Policy::kAdaptive:
      break;
  }
  SmState& sm = sm_[ctx.smid()];
  SiteState& st = sm.sites[site_index(size)];
  if (st.aggregated) return aggregated_malloc(ctx, size, &st);
  // Per-lane passthrough: the base manager's own path, plus a countdown and
  // (on sampled calls) two counter reads. No atomics, no collectives.
  ++sm.passthrough_calls;
  if (--st.sample_countdown != 0) return inner_call(ctx, size);
  st.sample_countdown = spec_.sample_every;
  const std::uint64_t c0 = cost_now(ctx);
  void* p = inner_call(ctx, size);
  update_ema(ctx, sm, st, cost_now(ctx) - c0, size);
  return p;
}

void* WarpAggregator::warp_malloc(gpu::ThreadCtx& ctx, std::size_t size) {
  if (spec_.policy == core::WarpAggSpec::Policy::kNever) {
    return inner_->warp_malloc(ctx, size);
  }
  return aggregated_malloc(ctx, size, nullptr);
}

void* WarpAggregator::aggregated_malloc(gpu::ThreadCtx& ctx, std::size_t size,
                                        SiteState* st) {
  SmState& sm = sm_[ctx.smid()];
  if (!slab_enabled_ || size > payload_cap_) {
    // The slab cannot serve this request (inner manager too small a direct
    // ceiling, or an oversized lane): serve per-lane without paying for
    // collectives. Adaptive sites keep sampling here so the EMA can still
    // release them back to passthrough when contention fades.
    ++sm.solo_fallbacks;
    if (st != nullptr && --st->sample_countdown == 0) {
      st->sample_countdown = spec_.sample_every;
      const std::uint64_t c0 = cost_now(ctx);
      void* p = inner_call(ctx, size);
      update_ema(ctx, sm, *st, cost_now(ctx) - c0, size);
      return p;
    }
    return inner_call(ctx, size);
  }

  const gpu::Coalesced g = ctx.coalesce();
  const std::size_t slot =
      std::max(SizeClassMap::round16(size), std::size_t{16});
  const std::size_t prefix = ctx.scan_exclusive_add(slot);
  // Three suspension points, not four: the HIGHEST-ranked member already
  // knows the group total (its prefix plus its own slot), so it carves and
  // the reduce_add collective is elided entirely.
  const unsigned last = 31u - static_cast<unsigned>(std::countl_zero(g.mask));
  const bool is_carver = ctx.lane_id() == last;

  std::byte* base = nullptr;
  if (is_carver) {
    const std::size_t total = prefix + slot;
    bool probing = false;
    if (st != nullptr) {
      // Every served group is a dwell observation (probes are merely the
      // EMA updates among them): a site that entered on fluke evidence can
      // reach the exit dwell within a few probe rounds instead of needing
      // `dwell` whole probes. Exit cannot flap — re-entry demands fresh
      // arming evidence, not an EMA crossing.
      ++st->samples_since_switch;
      if (st->probe_countdown <= 1) {
        st->probe_countdown = spec_.probe_every;
        probing = true;
      } else {
        --st->probe_countdown;
      }
    }
    if (probing) {
      base = probe_sentinel();
    } else if (total <= payload_cap_) {
      base = carve(ctx, sm, total, g.size);
      if (base != nullptr) {
        ++sm.groups_combined;
        sm.lanes_served += g.size;
      }
    }
  }
  base = ctx.broadcast(g, base, last);

  if (base == probe_sentinel()) {
    // Probe round: the whole group serves per-lane, and the carver samples
    // the cost the lane path would see right now — the symmetric
    // counterpart of passthrough-mode sampling, so a site can discover that
    // the contention that sent it here has gone away.
    if (is_carver) {
      ++sm.probes;
      const std::uint64_t c0 = cost_now(ctx);
      void* p = inner_call(ctx, size);
      update_ema(ctx, sm, *st, cost_now(ctx) - c0, size);
      return p;
    }
    ++sm.passthrough_calls;
    return inner_call(ctx, size);
  }
  if (base == nullptr) {
    // Oversized group total or refill failure: per-lane requests are more
    // likely to be serviceable than one combined span, so degrade.
    ++sm.solo_fallbacks;
    return inner_call(ctx, size);
  }
  return base + prefix;
}

std::byte* WarpAggregator::carve(gpu::ThreadCtx& ctx, SmState& sm,
                                 std::size_t total, unsigned lanes) {
  SlabDesc* d = sm.slab;
  SlabDesc* superseded = nullptr;
  bool refilled = false;
  if (d == nullptr || d->cursor + total > d->capacity) {
    // Bulk refill: one inner allocation backs many groups. The inner call
    // may suspend this fiber, so everything below re-derives state; the
    // install-and-claim sequence after it has no suspension point, which
    // makes it atomic with respect to the other fibers of this SM —
    // concurrent refills each carve from their own freshly installed slab.
    auto* raw = static_cast<std::byte*>(inner_call(ctx, slab_alloc_bytes_));
    if (raw == nullptr) return nullptr;
    if (!in_arena(raw) || !in_arena(raw + slab_alloc_bytes_ - 1)) {
      // A relayed (host-heap) window is invisible to the masked-descriptor
      // lookup in free(); give it back and let the group degrade per-lane.
      inner_->free(ctx, raw);
      return nullptr;
    }
    const auto ubase =
        (reinterpret_cast<std::uintptr_t>(raw) + window_ - 1) &
        ~static_cast<std::uintptr_t>(window_ - 1);
    d = reinterpret_cast<SlabDesc*>(ubase);
    d->self = d;
    d->raw = raw;
    d->live_retired = 0;
    d->cursor = 0;
    d->capacity = static_cast<std::uint32_t>(payload_cap_);
    // Magic is published last (release) so a cross-SM free that races the
    // installation only matches a fully initialised descriptor.
    std::atomic_ref<std::uint64_t>(d->magic).store(kSlabMagic,
                                                   std::memory_order_release);
    superseded = sm.slab;
    sm.slab = d;
    ++sm.slab_refills;
    refilled = true;
    slabs_ever_.store(true, std::memory_order_release);
  }

  // Claim — no suspension point since the capacity check / installation.
  std::byte* p = reinterpret_cast<std::byte*>(d) + kDescBytes + d->cursor;
  d->cursor += static_cast<std::uint32_t>(total);
  if (!bulk_free_inner_) {
    ctx.atomic_add(&d->live_retired, static_cast<std::uint64_t>(lanes));
  }
  ++sm.slab_group_carves;

  // Anything that may suspend again runs only after the claim.
  if (superseded != nullptr) retire(ctx, superseded);
  if (refilled && observer_ != nullptr) {
    observer_->on_agg_event(
        ctx, core::AggEventKind::kSlabRefill, slab_alloc_bytes_,
        static_cast<std::uint64_t>(reinterpret_cast<std::byte*>(d) -
                                   arena_lo_));
  }
  return p;
}

void WarpAggregator::retire(gpu::ThreadCtx& ctx, SlabDesc* d) {
  if (d == nullptr) return;
  if (bulk_free_inner_) {
    // Reclaimed wholesale by warp_free_all; poison the descriptor now so a
    // stale magic can never shadow memory the inner manager hands out later.
    d->self = nullptr;
    std::atomic_ref<std::uint64_t>(d->magic).store(0,
                                                   std::memory_order_release);
    return;
  }
  const std::uint64_t old = ctx.atomic_or(&d->live_retired, kRetiredBit);
  if ((old & ~kRetiredBit) == 0) {
    std::byte* raw = d->raw;
    d->self = nullptr;
    std::atomic_ref<std::uint64_t>(d->magic).store(0,
                                                   std::memory_order_release);
    inner_->free(ctx, raw);
  }
}

void WarpAggregator::slab_free(gpu::ThreadCtx& ctx, SlabDesc* d) {
  if (bulk_free_inner_) return;  // reclaimed wholesale by warp_free_all
  const std::uint64_t old = ctx.atomic_sub(&d->live_retired, std::uint64_t{1});
  if (old == (kRetiredBit | 1)) {
    // Last lane out of a retired slab returns the whole backing block. A
    // racing free for another span of this slab cannot reach here: it holds
    // a live reference, so `old` still had its count.
    std::byte* raw = d->raw;
    d->self = nullptr;
    std::atomic_ref<std::uint64_t>(d->magic).store(0,
                                                   std::memory_order_release);
    inner_->free(ctx, raw);
  }
}

void WarpAggregator::free(gpu::ThreadCtx& ctx, void* ptr) {
  if (ptr == nullptr) return;
  if (slabs_ever_.load(std::memory_order_acquire) && in_arena(ptr)) {
    const auto u = reinterpret_cast<std::uintptr_t>(ptr);
    auto* win = reinterpret_cast<std::byte*>(
        u & ~static_cast<std::uintptr_t>(window_ - 1));
    // Slab payloads start kDescBytes past their window base, so a pointer AT
    // the base is never ours; the bounds guard keeps the probe inside the
    // arena for windows straddling its edges.
    if (win >= arena_lo_ && win + kDescBytes <= arena_hi_ &&
        reinterpret_cast<std::byte*>(u) != win) {
      auto* d = reinterpret_cast<SlabDesc*>(win);
      const auto magic = std::atomic_ref<std::uint64_t>(d->magic).load(
          std::memory_order_acquire);
      if (magic == kSlabMagic && d->self == d) {
        slab_free(ctx, d);
        return;
      }
    }
  }
  inner_->free(ctx, ptr);
}

void WarpAggregator::warp_free_all(gpu::ThreadCtx& ctx) {
  inner_->warp_free_all(ctx);
}

core::AggregationReport WarpAggregator::report() const {
  core::AggregationReport r;
  for (unsigned i = 0; i < num_sms_; ++i) {
    const SmState& sm = sm_[i];
    r.passthrough_calls += sm.passthrough_calls;
    r.groups_combined += sm.groups_combined;
    r.lanes_served += sm.lanes_served;
    r.slab_refills += sm.slab_refills;
    r.slab_group_carves += sm.slab_group_carves;
    r.solo_fallbacks += sm.solo_fallbacks;
    r.probes += sm.probes;
    r.switches_to_agg += sm.switches_to_agg;
    r.switches_to_pass += sm.switches_to_pass;
  }
  return r;
}

}  // namespace gms::alloc_core
