#include "alloc_core/warp_aggregator.h"

#include <cassert>
#include <limits>
#include <new>

#include "alloc_core/size_class_map.h"

namespace gms::alloc_core {

namespace {
/// Redzone-style overhead every lane slot carries on top of its payload.
constexpr std::size_t kSlotOverhead = 16;  // sizeof(LaneHeader)
constexpr std::size_t kBlockOverhead = 16;  // sizeof(BlockHeader)
}  // namespace

core::AllocatorTraits WarpAggregator::decorate_traits(core::AllocatorTraits t) {
  t.decorated = true;
  // A solo lane's request grows by the block + lane headers before it
  // reaches the inner manager, so the size at which the inner path starts
  // relaying shrinks by that overhead (mirrors the validating twin's pad).
  if (t.max_direct_size != std::numeric_limits<std::size_t>::max()) {
    const std::size_t pad = kBlockOverhead + kSlotOverhead;
    t.max_direct_size = t.max_direct_size > pad ? t.max_direct_size - pad : 0;
  }
  return t;
}

WarpAggregator::WarpAggregator(std::unique_ptr<core::MemoryManager> inner)
    : inner_(std::move(inner)) {
  name_ = std::string(inner_->traits().name) + "+W";
  traits_ = decorate_traits(inner_->traits());
  traits_.name = name_;
  init_ms_ = inner_->init_ms();
}

void* WarpAggregator::malloc(gpu::ThreadCtx& ctx, std::size_t size) {
  // Leader-combine: one coalesce, one prefix sum, ONE inner malloc for the
  // whole group (contrast: the undecorated path issues one per lane).
  const gpu::Coalesced g = ctx.coalesce();
  const std::size_t slot = SizeClassMap::round16(size) + sizeof(LaneHeader);
  const std::size_t prefix = ctx.scan_exclusive_add(slot);
  const std::size_t total = ctx.reduce_add(slot);

  std::byte* block = nullptr;
  if (g.is_leader()) {
    block = static_cast<std::byte*>(
        inner_->malloc(ctx, sizeof(BlockHeader) + total));
    if (block != nullptr) {
      new (block) BlockHeader{kBlockMagic, g.size,
                              static_cast<std::uint64_t>(total)};
      groups_.fetch_add(1, std::memory_order_relaxed);
      lanes_.fetch_add(g.size, std::memory_order_relaxed);
    }
  }
  block = ctx.broadcast(g, block, g.leader);
  if (block == nullptr) {
    // The combined request outgrew the inner manager (32 aggregated lanes
    // can exceed a serviceable-size ceiling a single lane never hits, e.g.
    // ScatterAlloc's multi-page run limit) — or it is genuinely out of
    // memory. Degrade to per-lane "group of one" blocks with the same
    // layout, so free() stays uniform and a failing combine never turns
    // into a spurious whole-group OOM.
    const std::size_t solo = sizeof(BlockHeader) + slot;
    auto* own = static_cast<std::byte*>(inner_->malloc(ctx, solo));
    if (own == nullptr) return nullptr;
    new (own) BlockHeader{kBlockMagic, 1u, static_cast<std::uint64_t>(slot)};
    lanes_.fetch_add(1, std::memory_order_relaxed);
    auto* lh = new (own + sizeof(BlockHeader)) LaneHeader{};
    lh->magic = kLaneMagic;
    lh->block_off = sizeof(BlockHeader);
    return own + sizeof(BlockHeader) + sizeof(LaneHeader);
  }

  std::byte* lane = block + sizeof(BlockHeader) + prefix;
  auto* lh = new (lane) LaneHeader{};
  lh->magic = kLaneMagic;
  lh->block_off = static_cast<std::uint64_t>(lane - block);
  return lane + sizeof(LaneHeader);
}

void* WarpAggregator::warp_malloc(gpu::ThreadCtx& ctx, std::size_t size) {
  return malloc(ctx, size);
}

void WarpAggregator::free(gpu::ThreadCtx& ctx, void* ptr) {
  if (ptr == nullptr) return;
  auto* lane = static_cast<std::byte*>(ptr) - sizeof(LaneHeader);
  auto* lh = reinterpret_cast<LaneHeader*>(lane);
  assert(lh->magic == kLaneMagic && "free of a pointer the aggregator never returned");
  auto* block = lane - lh->block_off;
  auto* bh = reinterpret_cast<BlockHeader*>(block);
  // Last lane out returns the combined block. fetch_sub returns the old
  // value, so the lane that saw 1 owned the final reference.
  if (ctx.atomic_sub(&bh->live, 1u) == 1u) {
    inner_->free(ctx, block);
  }
}

void WarpAggregator::warp_free_all(gpu::ThreadCtx& ctx) {
  // Wholesale reclamation subsumes the per-block refcounts.
  inner_->warp_free_all(ctx);
}

}  // namespace gms::alloc_core
