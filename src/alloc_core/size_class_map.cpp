#include "alloc_core/size_class_map.h"

#include <cassert>

namespace gms::alloc_core {

SizeClassMap SizeClassMap::geometric(std::size_t base, unsigned num_classes) {
  assert(num_classes > 0 && num_classes <= kMaxClasses);
  SizeClassMap map;
  map.num_ = num_classes;
  for (unsigned c = 0; c < num_classes; ++c) {
    map.bytes_[c] = base << c;
  }
  return map;
}

SizeClassMap SizeClassMap::ladder(std::initializer_list<std::size_t> sizes) {
  assert(sizes.size() > 0 && sizes.size() <= kMaxClasses);
  SizeClassMap map;
  map.num_ = 0;
  [[maybe_unused]] std::size_t prev = 0;  // only read by the NDEBUG-gated assert
  for (std::size_t s : sizes) {
    assert(s > prev && "ladder must be strictly ascending");
    prev = s;
    map.bytes_[map.num_++] = s;
  }
  return map;
}

}  // namespace gms::alloc_core
