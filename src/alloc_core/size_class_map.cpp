#include "alloc_core/size_class_map.h"

#include <cassert>

#include "core/alloc_config.h"

namespace gms::alloc_core {

SizeClassMap SizeClassMap::geometric(std::size_t base, unsigned num_classes) {
  assert(num_classes > 0 && num_classes <= kMaxClasses);
  SizeClassMap map;
  map.num_ = num_classes;
  for (unsigned c = 0; c < num_classes; ++c) {
    map.bytes_[c] = base << c;
  }
  return map;
}

SizeClassMap SizeClassMap::ladder(std::initializer_list<std::size_t> sizes) {
  assert(sizes.size() > 0 && sizes.size() <= kMaxClasses);
  SizeClassMap map;
  map.num_ = 0;
  [[maybe_unused]] std::size_t prev = 0;  // only read by the NDEBUG-gated assert
  for (std::size_t s : sizes) {
    assert(s > prev && "ladder must be strictly ascending");
    prev = s;
    map.bytes_[map.num_++] = s;
  }
  return map;
}

SizeClassMap SizeClassMap::parse(std::string_view text) {
  const auto rungs = core::parse_ladder_string(text);  // throws kBadLadder
  SizeClassMap map;
  map.num_ = 0;
  for (auto r : rungs) {
    map.bytes_[map.num_++] = static_cast<std::size_t>(r);
  }
  return map;
}

std::string SizeClassMap::to_string() const {
  std::string out;
  for (unsigned c = 0; c < num_; ++c) {
    if (c) out += ':';
    out += std::to_string(bytes_[c]);
  }
  return out;
}

}  // namespace gms::alloc_core
