#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/utils.h"
#include "gpu/device.h"

namespace gms::alloc_core {

/// Host-side carving of an allocator's slice of the device arena, done once
/// in every manager's constructor. Replaces the per-allocator HeapCarver
/// copies and adds two things the copies never had:
///
///  * a named extent ledger — which structure owns which byte range — so
///    audits and crash reports can say "page bitfield" instead of an offset;
///  * an offset codec (pointer <-> slice-relative offset) so managers stop
///    hand-rolling `ptr - base` arithmetic and range checks.
///
/// Alignment semantics are exactly HeapCarver's: take() aligns to
/// max(align, alignof(T)) before carving, take_rest() aligns then hands out
/// everything left. Refactored managers therefore produce bit-identical
/// layouts (checked by the recorded-trace replay digests).
class SubArena {
 public:
  SubArena(gpu::Device& dev, std::size_t heap_bytes)
      : base_(dev.arena().data()), end_(heap_bytes) {}

  /// Carves a sub-range (one manager nesting a region inside another's).
  SubArena(std::byte* base, std::size_t bytes) : base_(base), end_(bytes) {}

  template <typename T>
  T* take(std::size_t count, std::size_t align = alignof(T),
          std::string_view label = {}) {
    off_ = core::round_up(off_, std::max<std::size_t>(align, alignof(T)));
    note(label, off_, sizeof(T) * count);
    auto* p = reinterpret_cast<T*>(base_ + off_);
    off_ += sizeof(T) * count;
    assert(off_ <= end_ && "allocator metadata exceeds heap");
    return p;
  }

  /// Remaining bytes after metadata, aligned to `align`.
  std::byte* take_rest(std::size_t& bytes_out, std::size_t align = 16,
                       std::string_view label = {}) {
    off_ = core::round_up(off_, align);
    bytes_out = end_ - off_;
    note(label, off_, bytes_out);
    auto* p = base_ + off_;
    off_ = end_;
    return p;
  }

  [[nodiscard]] std::size_t used() const { return off_; }
  [[nodiscard]] std::size_t size() const { return end_; }
  [[nodiscard]] std::byte* base() const { return base_; }

  // ---- offset codec -----------------------------------------------------
  [[nodiscard]] bool contains(const void* p) const {
    const auto* b = static_cast<const std::byte*>(p);
    return b >= base_ && b < base_ + end_;
  }
  [[nodiscard]] std::uint64_t offset_of(const void* p) const {
    assert(contains(p));
    return static_cast<std::uint64_t>(static_cast<const std::byte*>(p) -
                                      base_);
  }
  [[nodiscard]] std::byte* at(std::uint64_t off) const {
    assert(off < end_);
    return base_ + off;
  }

  // ---- extent ledger ------------------------------------------------------
  struct Extent {
    std::string_view label;  ///< static strings only (lives past the carve)
    std::size_t offset = 0;
    std::size_t bytes = 0;
  };
  [[nodiscard]] const std::vector<Extent>& extents() const { return extents_; }

  /// One-line layout summary ("meta 4.2KiB | pages 59.8MiB") for audit
  /// details and crash reports.
  [[nodiscard]] std::string describe() const;

 private:
  void note(std::string_view label, std::size_t off, std::size_t bytes) {
    if (!label.empty()) extents_.push_back({label, off, bytes});
  }

  std::byte* base_;
  std::size_t end_;
  std::size_t off_ = 0;
  std::vector<Extent> extents_;
};

}  // namespace gms::alloc_core
