#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <string_view>

#include "core/utils.h"

namespace gms::alloc_core {

/// Shared size-class geometry of the surveyed allocators. Every manager's
/// first step is rounding requests to 16-byte granules, and most then bucket
/// the rounded size into a small ascending ladder of classes; this map
/// centralises the rounding and the lookup while letting each manager keep
/// its paper's exact geometry (Halloc's 16-entry mixed ladder, the `16 << c`
/// geometric ladders of Ouroboros / XMalloc / BulkAlloc).
///
/// The lookup is a linear first-fit scan, exactly like the per-allocator
/// loops it replaces — class routing stays bit-identical under trace replay.
class SizeClassMap {
 public:
  static constexpr std::size_t kGranule = 16;
  static constexpr unsigned kNoClass = ~0u;
  static constexpr std::size_t kMaxClasses = 16;

  /// `num_classes` classes of `base << c` bytes each (the Ouroboros /
  /// XMalloc / BulkAlloc family of ladders).
  static SizeClassMap geometric(std::size_t base, unsigned num_classes);

  /// Explicit ascending ladder (Halloc's mixed powers-of-two block table).
  static SizeClassMap ladder(std::initializer_list<std::size_t> sizes);

  /// Colon-separated textual ladder ("16:24:32:...:3072") — the serialized
  /// form used by the runtime-Config layer. Throws core::ConfigError
  /// (kBadLadder) on empty/too-long/non-ascending input.
  static SizeClassMap parse(std::string_view text);

  /// Inverse of parse(): colon-separated ascending rungs.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] unsigned num_classes() const { return num_; }
  [[nodiscard]] std::size_t class_bytes(unsigned c) const { return bytes_[c]; }
  /// Largest request any class serves (the manager's direct-service limit).
  [[nodiscard]] std::size_t max_bytes() const { return bytes_[num_ - 1]; }

  /// Smallest class serving `size`, or kNoClass when the request exceeds
  /// the ladder (the caller's relay / multi-page / reject path).
  [[nodiscard]] unsigned class_for(std::size_t size) const {
    for (unsigned c = 0; c < num_; ++c) {
      if (size <= bytes_[c]) return c;
    }
    return kNoClass;
  }

  /// The ubiquitous 16-byte request rounding.
  [[nodiscard]] static constexpr std::size_t round16(std::size_t size) {
    return core::round_up(size, kGranule);
  }

 private:
  std::array<std::size_t, kMaxClasses> bytes_{};
  unsigned num_ = 0;
};

}  // namespace gms::alloc_core
