#include "alloc_core/reserve_pool.h"

#include <cassert>

namespace gms::alloc_core {

namespace {

/// Reserve-class ladder: 16 << c for c in [0, 16) — 16 B up to 512 KiB.
SizeClassMap reserve_classes() {
  return SizeClassMap::geometric(SizeClassMap::kGranule,
                                 SizeClassMap::kMaxClasses);
}

}  // namespace

ReservePool::ReservePool(std::byte* base, std::size_t bytes)
    : classes_(reserve_classes()), base_(base), bytes_(bytes) {
  assert(bytes_ >= kHeaderBytes + SizeClassMap::kGranule &&
         "reserve slice too small for a single block");
}

void* ReservePool::pop_free(unsigned cls) {
  auto& head = heads_[cls];
  std::uint64_t h = head.load(std::memory_order_acquire);
  while ((h & kOffMask) != 0) {
    std::byte* block = base_ + ((h & kOffMask) - 1) * SizeClassMap::kGranule;
    auto* next_word = reinterpret_cast<std::uint64_t*>(block + kHeaderBytes);
    const std::uint64_t next =
        std::atomic_ref<std::uint64_t>(*next_word).load(
            std::memory_order_relaxed);
    const std::uint64_t nh = ((h + kGenInc) & ~kOffMask) | (next & kOffMask);
    if (head.compare_exchange_weak(h, nh, std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
      auto* hdr = reinterpret_cast<Header*>(block);
      std::atomic_ref<std::uint32_t>(hdr->state)
          .store(kLive, std::memory_order_release);
      return block + kHeaderBytes;
    }
  }
  return nullptr;
}

void* ReservePool::bump_carve(unsigned cls) {
  const std::uint64_t total = kHeaderBytes + classes_.class_bytes(cls);
  const std::uint64_t off = bump_.fetch_add(total, std::memory_order_relaxed);
  if (off + total > bytes_) {
    // The cursor never rewinds: once any carve crosses the end, every later
    // carve fails too — exhaustion is a deterministic point in the request
    // stream, and the lost tail fragment is bounded by one block.
    return nullptr;
  }
  std::uint64_t hw = high_water_.load(std::memory_order_relaxed);
  while (off + total > hw &&
         !high_water_.compare_exchange_weak(hw, off + total,
                                            std::memory_order_relaxed)) {
  }
  auto* hdr = reinterpret_cast<Header*>(base_ + off);
  hdr->magic = kMagic;
  hdr->cls = cls;
  hdr->pad = 0;
  std::atomic_ref<std::uint32_t>(hdr->state)
      .store(kLive, std::memory_order_release);
  return base_ + off + kHeaderBytes;
}

void* ReservePool::malloc(gpu::ThreadCtx& /*ctx*/, std::size_t size) {
  const unsigned cls = classes_.class_for(SizeClassMap::round16(
      size == 0 ? std::size_t{1} : size));
  if (cls == SizeClassMap::kNoClass) {
    rejected_large_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (void* p = pop_free(cls)) return p;
  if (void* p = bump_carve(cls)) return p;
  exhausted_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

ReservePool::FreeResult ReservePool::free(gpu::ThreadCtx& /*ctx*/, void* ptr) {
  auto* p = static_cast<std::byte*>(ptr);
  if (p < base_ + kHeaderBytes ||
      (static_cast<std::uint64_t>(p - base_) % SizeClassMap::kGranule) != 0) {
    invalid_frees_.fetch_add(1, std::memory_order_relaxed);
    return FreeResult::kInvalid;
  }
  auto* hdr = reinterpret_cast<Header*>(p - kHeaderBytes);
  const std::uint64_t hdr_off = static_cast<std::uint64_t>(
      reinterpret_cast<std::byte*>(hdr) - base_);
  if (hdr_off + kHeaderBytes > high_water_.load(std::memory_order_acquire) ||
      std::atomic_ref<std::uint32_t>(hdr->magic)
              .load(std::memory_order_relaxed) != kMagic ||
      hdr->cls >= classes_.num_classes()) {
    invalid_frees_.fetch_add(1, std::memory_order_relaxed);
    return FreeResult::kInvalid;
  }
  std::uint32_t expect = kLive;
  if (!std::atomic_ref<std::uint32_t>(hdr->state)
           .compare_exchange_strong(expect, kFree,
                                    std::memory_order_acq_rel)) {
    // Exactly one concurrent (or repeated) free wins the CAS; the rest are
    // the double frees the conformance suite probes for — absorbed here.
    double_frees_.fetch_add(1, std::memory_order_relaxed);
    return FreeResult::kDoubleFree;
  }
  const std::uint64_t enc = hdr_off / SizeClassMap::kGranule + 1;
  auto* next_word = reinterpret_cast<std::uint64_t*>(p);
  auto& head = heads_[hdr->cls];
  std::uint64_t h = head.load(std::memory_order_relaxed);
  std::uint64_t nh;
  do {
    std::atomic_ref<std::uint64_t>(*next_word)
        .store(h & kOffMask, std::memory_order_relaxed);
    nh = ((h + kGenInc) & ~kOffMask) | enc;
  } while (!head.compare_exchange_weak(h, nh, std::memory_order_release,
                                       std::memory_order_relaxed));
  return FreeResult::kFreed;
}

core::AuditResult ReservePool::audit() const {
  core::AuditResult r;
  r.supported = true;
  const std::uint64_t end = high_water_.load(std::memory_order_acquire);
  std::uint64_t off = 0;
  while (off + kHeaderBytes <= end) {
    const auto* hdr = reinterpret_cast<const Header*>(base_ + off);
    const std::uint32_t magic = std::atomic_ref<const std::uint32_t>(hdr->magic)
                                    .load(std::memory_order_relaxed);
    const std::uint32_t state = std::atomic_ref<const std::uint32_t>(hdr->state)
                                    .load(std::memory_order_relaxed);
    if (magic != kMagic || hdr->cls >= classes_.num_classes()) {
      r.ok = false;
      ++r.failures;
      if (r.detail.empty()) {
        r.detail = "reserve block header clobbered at offset " +
                   std::to_string(off);
      }
      break;  // block size unknown: the walk cannot continue
    }
    if (state != kLive && state != kFree) {
      r.ok = false;
      ++r.failures;
      if (r.detail.empty()) {
        r.detail = "reserve block state invalid at offset " +
                   std::to_string(off);
      }
    }
    ++r.structures_walked;
    off += kHeaderBytes + classes_.class_bytes(hdr->cls);
  }
  return r;
}

}  // namespace gms::alloc_core
