#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/memory_manager.h"
#include "core/warpagg.h"
#include "gpu/device.h"

namespace gms::alloc_core {

/// Adaptive warp-aggregation adapter (the paper's §4 warp-cooperation
/// analysis, generalised): the "+W" twins. Two serving paths per request:
///
///  * **Per-lane passthrough** — the call forwards straight to the inner
///    manager, exactly like the undecorated base. Every Nth call per
///    (SM, size-class) site is sampled: the per-SM delta of
///    `atomic_total + cas_failed + 4*backoffs` across the inner call feeds
///    a fixed-point EMA, the deterministic cost signal (never wall clock).
///  * **Aggregated** — lanes that reach malloc together coalesce, their
///    16-byte-rounded requests are prefix-summed, and the group leader
///    bump-carves ONE span from a per-SM cached slab; the slab itself is
///    refilled in bulk (2x the slab window) from the inner manager. Lane
///    spans carry NO headers: the slab descriptor lives at the window's
///    alignment base, so free() recovers it by masking the payload pointer.
///    The last lane out of a retired slab returns the whole backing block
///    to the inner manager — one inner free for dozens of groups.
///
/// The adaptive policy switches each site between the two paths when the
/// EMA crosses `enter_cost`/`exit_cost` with a dwell damper (hysteresis).
/// In aggregated mode every Nth group re-probes the per-lane path so a site
/// can discover that contention went away. Decisions derive only from
/// deterministic per-SM counters; mode switches surface through the
/// AggregationObserver seam as trace markers outside the canonical replay
/// digest.
///
/// When the inner manager's traits advertise `bulk_free_capable` (and no
/// individual free — the FDGMalloc shape), the slab path drops even the
/// descriptor refcount: frees are no-ops and the backing blocks are
/// reclaimed wholesale by `warp_free_all`.
class WarpAggregator final : public core::MemoryManager {
 public:
  WarpAggregator(std::unique_ptr<core::MemoryManager> inner,
                 const core::WarpAggSpec& spec, gpu::Device& dev);

  [[nodiscard]] const core::AllocatorTraits& traits() const override {
    return traits_;
  }
  [[nodiscard]] void* malloc(gpu::ThreadCtx& ctx, std::size_t size) override;
  void free(gpu::ThreadCtx& ctx, void* ptr) override;
  /// Warp-cooperative entry point: an explicit warp request always takes the
  /// aggregated path (policy kNever still passes through).
  [[nodiscard]] void* warp_malloc(gpu::ThreadCtx& ctx,
                                  std::size_t size) override;
  void warp_free_all(gpu::ThreadCtx& ctx) override;
  [[nodiscard]] core::AuditResult audit() override { return inner_->audit(); }

  [[nodiscard]] core::MemoryManager& inner() { return *inner_; }
  [[nodiscard]] const core::WarpAggSpec& spec() const { return spec_; }

  /// Observer for mode switches and slab refills (the StackBuilder installs
  /// a recorder-backed sink when the stack also has a trace stage).
  void set_observer(std::unique_ptr<core::AggregationObserver> obs) {
    observer_ = std::move(obs);
  }

  /// Host-side roll-up of the per-SM counters (quiescent reads).
  [[nodiscard]] core::AggregationReport report() const;
  /// Groups the leader combined / lanes served through them, for the
  /// bench's "32 mallocs became N inner calls" evidence.
  [[nodiscard]] std::uint64_t groups_combined() const {
    return report().groups_combined;
  }
  [[nodiscard]] std::uint64_t lanes_served() const {
    return report().lanes_served;
  }

  /// Traits a "+W" twin advertises, derivable without building a manager
  /// (registry twin registration probes nothing). Name is left to the
  /// caller. Lane spans are header-free, so the direct-service ceiling is
  /// NOT shrunk: the passthrough path forwards requests verbatim.
  static core::AllocatorTraits decorate_traits(core::AllocatorTraits t);

 private:
  /// Descriptor at the alignment base of one slab window. Published by the
  /// owning SM's leader (magic stored last, release order); freeing lanes on
  /// any SM recover it from a payload pointer by masking with the window
  /// size and validating magic + self-pointer.
  struct SlabDesc {
    std::uint64_t magic = 0;
    SlabDesc* self = nullptr;     ///< == this; masked-lookup discriminator
    std::byte* raw = nullptr;     ///< the inner allocation backing the window
    std::uint64_t live_retired = 0;  ///< bit 63: retired; low bits: live lanes
    std::uint32_t cursor = 0;        ///< payload bytes carved (owner SM only)
    std::uint32_t capacity = 0;      ///< payload bytes available
  };
  static constexpr std::size_t kDescBytes = 64;  ///< payload starts here
  static_assert(sizeof(SlabDesc) <= kDescBytes);
  static constexpr std::uint64_t kSlabMagic = 0xA6651AB0C0FFEE42ull;
  static constexpr std::uint64_t kRetiredBit = std::uint64_t{1} << 63;

  /// Per-(SM, size-class) adaptive state. Only lanes of the owning SM touch
  /// it (one worker thread per SM), so plain fields suffice — and decorator
  /// bookkeeping never pollutes the instrumented device-atomic counters the
  /// sampler reads.
  struct SiteState {
    std::uint32_t ema = 0;  ///< contention EMA, kEmaFrac fixed point
    std::uint32_t sample_countdown = 1;
    std::uint32_t probe_countdown = 0;
    std::uint32_t samples_since_switch = 0;
    bool aggregated = false;
  };
  static constexpr unsigned kSites = 16;  ///< log2 buckets of 16B granules
  static constexpr unsigned kEmaFrac = 4;
  static constexpr unsigned kEmaAlphaShift = 3;  ///< alpha = 1/8
  /// A single sample over `enter_cost * kArmSpikeFactor` arms the SM: only
  /// saturated lock storms (whole CAS bursts landing in one delta) reach it.
  static constexpr std::uint32_t kArmSpikeFactor = 16;

  struct alignas(gpu::kDestructiveInterferenceSize) SmState {
    SiteState sites[kSites];
    /// SM-pooled cost EMA, fed by every sampled call regardless of site.
    /// Contention and heap-fill cost are properties of the shared inner
    /// manager, not of one size class — so ENTRY decisions consider the
    /// pooled signal too (a storm observed on any site arms them all, and
    /// the entering site inherits the pooled EMA as its starting evidence).
    /// EXIT stays per-site: only a site's own probes can release it.
    std::uint32_t ema = 0;
    /// Evidence latch, the sole ENTRY gate: set when one sampled call costs
    /// over `enter_cost * kArmSpikeFactor` on its own — the signature of a
    /// saturated lock storm, whose CAS burst lands whole inside a single
    /// delta. The latch outlives the pooled EMA's decay: workloads that
    /// visit size classes one at a time (the convergent-rotation shape)
    /// would otherwise lose the evidence before a late-rotation site
    /// samples. A probe-driven exit clears it — re-entry needs a new spike.
    bool armed = false;
    SlabDesc* slab = nullptr;  ///< current slab window (owner SM only)
    // Hot counters, plain per-SM (no cross-thread sharing on the hot path).
    std::uint64_t passthrough_calls = 0;
    std::uint64_t groups_combined = 0;
    std::uint64_t lanes_served = 0;
    std::uint64_t slab_refills = 0;
    std::uint64_t slab_group_carves = 0;
    std::uint64_t solo_fallbacks = 0;
    std::uint64_t probes = 0;
    std::uint64_t switches_to_agg = 0;
    std::uint64_t switches_to_pass = 0;
  };

  [[nodiscard]] static unsigned site_index(std::size_t size);
  [[nodiscard]] SiteState& site(gpu::ThreadCtx& ctx, std::size_t size);
  [[nodiscard]] std::uint64_t cost_now(gpu::ThreadCtx& ctx) const;
  void update_ema(gpu::ThreadCtx& ctx, SmState& sm, SiteState& st,
                  std::uint64_t cost, std::size_t size);

  /// The inner call both non-aggregated paths share (warp-scoped inners get
  /// warp_malloc; everyone else the per-thread entry).
  [[nodiscard]] void* inner_call(gpu::ThreadCtx& ctx, std::size_t size);
  [[nodiscard]] void* aggregated_malloc(gpu::ThreadCtx& ctx, std::size_t size,
                                        SiteState* st);
  [[nodiscard]] std::byte* carve(gpu::ThreadCtx& ctx, SmState& sm,
                                 std::size_t total, unsigned lanes);
  void retire(gpu::ThreadCtx& ctx, SlabDesc* d);
  void slab_free(gpu::ThreadCtx& ctx, SlabDesc* d);
  [[nodiscard]] bool in_arena(const void* p) const {
    const auto* b = static_cast<const std::byte*>(p);
    return b >= arena_lo_ && b < arena_hi_;
  }

  std::unique_ptr<core::MemoryManager> inner_;
  std::unique_ptr<core::AggregationObserver> observer_;
  core::WarpAggSpec spec_;
  std::string name_;  ///< backs traits_.name ("<inner>+W")
  core::AllocatorTraits traits_{};
  std::byte* arena_lo_ = nullptr;
  std::byte* arena_hi_ = nullptr;
  std::size_t window_ = 0;        ///< slab alignment = window span
  std::size_t payload_cap_ = 0;   ///< window_ - kDescBytes
  std::size_t slab_alloc_bytes_ = 0;  ///< 2 * window_: refill request size
  bool slab_enabled_ = true;   ///< inner can serve the refill request at all
  bool bulk_free_inner_ = false;  ///< header-free, refcount-free slab mode
  bool warp_only_inner_ = false;
  /// Set at the first refill; lets free() skip the masked-descriptor lookup
  /// entirely on runs that never left passthrough.
  std::atomic<bool> slabs_ever_{false};
  unsigned num_sms_ = 1;
  std::unique_ptr<SmState[]> sm_;
};

}  // namespace gms::alloc_core
