#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/memory_manager.h"

namespace gms::alloc_core {

/// Warp-aggregated leader-combine adapter (the paper's §4 warp-cooperation
/// analysis, generalised): the lanes that reach malloc together are
/// coalesced, their 16-byte-rounded requests prefix-summed, and the group
/// leader issues ONE inner allocation for the combined total — one leader
/// claim/CAS per coalesced group instead of one per lane. FDGMalloc bakes
/// this scheme into its own superblocks; the adapter retrofits it onto any
/// general-purpose manager, registered as the "+W" twins and measured by
/// bench_warpagg.
///
/// Block layout (one inner allocation per group):
///   [BlockHeader 16B][lane slot 0][lane slot 1]...[lane slot N-1]
///   lane slot = [LaneHeader 16B][payload, 16B-rounded]
/// Individual frees stay legal: each free decrements the block's live-lane
/// count (one device atomic), and the last lane out returns the whole block
/// to the inner manager.
class WarpAggregator final : public core::MemoryManager {
 public:
  explicit WarpAggregator(std::unique_ptr<core::MemoryManager> inner);

  [[nodiscard]] const core::AllocatorTraits& traits() const override {
    return traits_;
  }
  [[nodiscard]] void* malloc(gpu::ThreadCtx& ctx, std::size_t size) override;
  void free(gpu::ThreadCtx& ctx, void* ptr) override;
  /// Warp-cooperative entry point: aggregation IS the warp path — same code.
  [[nodiscard]] void* warp_malloc(gpu::ThreadCtx& ctx,
                                  std::size_t size) override;
  void warp_free_all(gpu::ThreadCtx& ctx) override;
  [[nodiscard]] core::AuditResult audit() override { return inner_->audit(); }

  [[nodiscard]] core::MemoryManager& inner() { return *inner_; }

  /// Groups the leader combined / lanes served through them, for the
  /// bench's "32 mallocs became N inner calls" evidence.
  [[nodiscard]] std::uint64_t groups_combined() const {
    return groups_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t lanes_served() const {
    return lanes_.load(std::memory_order_relaxed);
  }

  /// Traits a "+W" twin advertises, derivable without building a manager
  /// (registry twin registration probes nothing). Name is left to the
  /// caller; the per-lane headers shrink the direct-service limit.
  static core::AllocatorTraits decorate_traits(core::AllocatorTraits t);

 private:
  struct BlockHeader {
    std::uint32_t magic;
    std::uint32_t live;  ///< lanes still holding a slot of this block
    std::uint64_t total; ///< combined payload+header bytes (audit aid)
  };
  struct LaneHeader {
    std::uint32_t magic;
    std::uint32_t pad;
    std::uint64_t block_off;  ///< this slot's offset from the block header
  };
  static_assert(sizeof(BlockHeader) == 16);
  static_assert(sizeof(LaneHeader) == 16);
  static constexpr std::uint32_t kBlockMagic = 0xA66B10CBu;
  static constexpr std::uint32_t kLaneMagic = 0xA66EA4E5u;

  std::unique_ptr<core::MemoryManager> inner_;
  std::string name_;  ///< backs traits_.name ("<inner>+W")
  core::AllocatorTraits traits_{};
  std::atomic<std::uint64_t> groups_{0};
  std::atomic<std::uint64_t> lanes_{0};
};

}  // namespace gms::alloc_core
